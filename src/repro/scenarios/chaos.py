"""Chaos audits: scenarios under injected faults, with invariants machine-checked.

The fault plane (:mod:`repro.net.faults`) can perturb any simulated run; this
module makes those perturbations *first-class and sweepable*, mirroring the
resilience layer one-to-one:

* :class:`FaultSpec` — one fault model from the :data:`~repro.net.faults.FAULTS`
  registry, referenced by string kind (``loss``, ``duplicate``, ``reorder``,
  ``latency_spike``, ``partition``, ``crash``, ``torn_append``, plus anything
  user-registered);
* :class:`ChaosSpec` — a frozen, JSON/TOML-serializable audit: a base
  :class:`~repro.scenarios.spec.ScenarioSpec` (``distributed`` runner), the
  fault grid, the :class:`~repro.net.faults.RecoveryPolicy` and the seeds;
* :class:`ChaosRecord` — the uniform, JSON-round-trippable result of one cell
  ``fault x seed``: the full fault-plane counter set plus one verdict per
  audited invariant;
* :func:`run_chaos` — the executor: sequential, or parallel over worker
  processes (``workers=N``) with journaled resume and the crash-tolerant
  ``failure_mode="quarantine"`` of the sweep engine.

Invariants audited per cell
---------------------------

==================  ===========================================================
verdict field       what it checks
==================  ===========================================================
``terminated``      the run quiesced (no livelock within the step budget);
                    aborting with ⊥ still terminates — hanging does not
``conservation_ok``  ``sent == delivered + dropped + lost`` on the final
                    network statistics (the fault plane settles the books)
``replay_ok``       a second run of the identical cell — fresh fault plan,
                    fresh network — reproduces the outcome, every counter and
                    the fault journal digest bit-for-bit
``store_repair_ok``  for ``torn_append`` faults: a results journal torn mid-
                    append repairs on resume and completes to the full record
                    set (vacuously true for network-level faults)
==================  ===========================================================

A cell is ``ok`` exactly when all four hold.  Everything in a record except
wall-clock-measured elapsed time is a pure function of ``(spec, seed)``: the
fault schedule is drawn from the plan's own seeded RNG and journaled, and
:meth:`~repro.net.faults.FaultPlan.digest` is what the determinism lock
compares across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.community.workload import default_provider_ids
from repro.core.framework import DistributedAuctioneer
from repro.obs.context import current_observation
from repro.net.faults import FAULTS, FaultPlan, RecoveryPolicy, make_fault
from repro.net.network import QuiescenceError
from repro.scenarios.runner import (
    RunRecord,
    build_latency_model,
    build_mechanism,
    build_topology,
    build_workload,
    record_from_outcome,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    SpecError,
    spec_from_dict,
    spec_to_dict,
    spec_with_overrides,
)

__all__ = [
    "FaultSpec",
    "ChaosSpec",
    "ChaosRecord",
    "ChaosResult",
    "ChaosContext",
    "chaos_from_dict",
    "chaos_to_dict",
    "chaos_with_overrides",
    "chaos_fingerprint",
    "run_chaos",
    "execute_cells",
]


@dataclass(frozen=True)
class FaultSpec:
    """One fault model from the ``FAULTS`` registry, referenced by kind.

    In spec files a fault is either a bare string (``"loss"``, all defaults)
    or a table whose remaining keys are the model parameters
    (``{"kind": "loss", "rate": 0.2}``); an optional ``label`` overrides the
    display label echoed into every record.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    RESERVED_KEYS = frozenset({"kind", "label"})

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError("faults.kind", "fault kind must be a non-empty string")
        object.__setattr__(self, "params", dict(self.params) if self.params else {})
        reserved = self.RESERVED_KEYS & set(self.params)
        if reserved:
            raise SpecError(
                "faults",
                f"fault parameters may not use the reserved keys {sorted(reserved)}",
            )

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        return f"{self.kind}({inner})"

    def build(self, path: str):
        """Instantiate the fault model (path-precise ``SpecError`` on failure)."""
        return make_fault(self.kind, dict(self.params), path)

    @staticmethod
    def from_value(value: Any, path: str) -> "FaultSpec":
        if isinstance(value, FaultSpec):
            return value
        if isinstance(value, str):
            return FaultSpec(value)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", None)
            if not isinstance(kind, str) or not kind:
                raise SpecError(path, "expected a 'kind' string in the fault table")
            label = data.pop("label", None)
            if label is not None and not isinstance(label, str):
                raise SpecError(f"{path}.label", "fault label must be a string")
            try:
                return FaultSpec(kind, data, label)
            except SpecError as exc:
                raise SpecError(path, exc.message) from exc
        raise SpecError(path, f"expected a string or a table, got {type(value).__name__}")

    def to_value(self) -> Any:
        if not self.params and self.label is None:
            return self.kind
        data: Dict[str, Any] = {"kind": self.kind}
        if self.label is not None:
            data["label"] = self.label
        data.update(self.params)
        return data


# ------------------------------------------------------------- recovery policy --
_RECOVERY_KEYS = ("enabled", "max_retries", "base_backoff", "backoff_factor")


def _recovery_from_value(value: Any, path: str = "recovery") -> RecoveryPolicy:
    """Parse a recovery table into a :class:`~repro.net.faults.RecoveryPolicy`."""
    if isinstance(value, RecoveryPolicy):
        return value
    if not isinstance(value, Mapping):
        raise SpecError(path, f"expected a table, got {type(value).__name__}")
    unknown = set(value) - set(_RECOVERY_KEYS)
    if unknown:
        raise SpecError(
            f"{path}.{sorted(unknown)[0]}",
            f"unknown recovery key; expected one of {', '.join(_RECOVERY_KEYS)}",
        )
    kwargs: Dict[str, Any] = {}
    if "enabled" in value:
        if not isinstance(value["enabled"], bool):
            raise SpecError(f"{path}.enabled", "expected a boolean")
        kwargs["enabled"] = value["enabled"]
    if "max_retries" in value:
        retries = value["max_retries"]
        if isinstance(retries, bool) or not isinstance(retries, int):
            raise SpecError(f"{path}.max_retries", "expected an integer")
        kwargs["max_retries"] = retries
    for key in ("base_backoff", "backoff_factor"):
        if key in value:
            number = value[key]
            if isinstance(number, bool) or not isinstance(number, (int, float)):
                raise SpecError(f"{path}.{key}", "expected a number")
            kwargs[key] = float(number)
    try:
        return RecoveryPolicy(**kwargs)
    except ValueError as exc:
        raise SpecError(path, str(exc)) from exc


def _recovery_to_value(policy: RecoveryPolicy) -> Dict[str, Any]:
    return {
        "enabled": policy.enabled,
        "max_retries": policy.max_retries,
        "base_backoff": policy.base_backoff,
        "backoff_factor": policy.backoff_factor,
    }


@dataclass(frozen=True)
class ChaosSpec:
    """A complete, serializable description of one chaos audit.

    Attributes:
        name: free-form label, echoed into every record and the journal manifest.
        base: the scenario being perturbed.  Must use the ``distributed``
            runner — the fault plane lives on the provider protocol's network.
        faults: the fault grid; each entry becomes one row of cells (one per
            seed).  At least one fault is required: a fault-free grid would
            vacuously report a clean audit (the *empty-plan differential lock*
            lives in the network test suite instead).
        recovery: the retransmission policy armed alongside every fault
            (``None`` means the :class:`~repro.net.faults.RecoveryPolicy`
            defaults).
        seeds: master seeds; each reruns the whole fault grid with the base
            scenario reseeded.  Empty means the base scenario's own seed.
    """

    name: str = "chaos"
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    faults: Tuple[FaultSpec, ...] = ()
    recovery: Optional[RecoveryPolicy] = None
    seeds: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base", spec_from_dict(self.base))
        if self.base.runner != "distributed":
            raise SpecError(
                "base.runner",
                "chaos audits inject faults into the provider protocol's network, "
                f"which only the 'distributed' runner hosts (got runner={self.base.runner!r})",
            )
        object.__setattr__(
            self,
            "faults",
            tuple(
                FaultSpec.from_value(fault, f"faults[{i}]")
                for i, fault in enumerate(self.faults)
            ),
        )
        if not self.faults:
            raise SpecError(
                "faults",
                "a chaos audit needs at least one fault model; registered kinds: "
                + ", ".join(FAULTS.available()),
            )
        if self.recovery is not None and not isinstance(self.recovery, RecoveryPolicy):
            object.__setattr__(self, "recovery", _recovery_from_value(self.recovery))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))

    def effective_seeds(self) -> Tuple[int, ...]:
        return self.seeds if self.seeds else (self.base.seed,)

    def effective_recovery(self) -> RecoveryPolicy:
        return self.recovery if self.recovery is not None else RecoveryPolicy()

    def cells(self) -> List[int]:
        """The ordered fault grid: one point per fault (seeds are instances)."""
        return list(range(len(self.faults)))


# ---------------------------------------------------------------------- parsing --
_CHAOS_KEYS = {"name", "base", "faults", "recovery", "seeds"}


def chaos_from_dict(data: Mapping[str, Any]) -> ChaosSpec:
    """Parse a chaos spec from a plain (JSON/TOML-shaped) mapping.

    Raises :class:`SpecError` with a dotted path to the offending key on any
    unknown key, wrong type, or invalid value.
    """
    if not isinstance(data, Mapping):
        raise SpecError("", f"expected a table at the top level, got {type(data).__name__}")
    unknown = set(data) - _CHAOS_KEYS
    if unknown:
        raise SpecError(
            sorted(unknown)[0],
            f"unknown chaos key; expected one of {', '.join(sorted(_CHAOS_KEYS))}",
        )
    kwargs: Dict[str, Any] = {}
    if "name" in data:
        name = data["name"]
        if not isinstance(name, str):
            raise SpecError("name", f"expected a string, got {type(name).__name__}")
        kwargs["name"] = name
    if "base" in data:
        base = data["base"]
        if not isinstance(base, Mapping):
            raise SpecError("base", f"expected a table, got {type(base).__name__}")
        try:
            kwargs["base"] = spec_from_dict(base)
        except SpecError as exc:
            raise SpecError(f"base.{exc.path}" if exc.path else "base", exc.message) from exc
    if "faults" in data:
        entries = data["faults"]
        if not isinstance(entries, (list, tuple)):
            raise SpecError("faults", f"expected a list, got {type(entries).__name__}")
        kwargs["faults"] = tuple(
            FaultSpec.from_value(entry, f"faults[{i}]") for i, entry in enumerate(entries)
        )
    if "recovery" in data and data["recovery"] is not None:
        kwargs["recovery"] = _recovery_from_value(data["recovery"])
    if "seeds" in data:
        entries = data["seeds"]
        if not isinstance(entries, (list, tuple)) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in entries
        ):
            raise SpecError("seeds", "expected a list of integers")
        kwargs["seeds"] = tuple(entries)
    return ChaosSpec(**kwargs)


def chaos_to_dict(spec: ChaosSpec) -> Dict[str, Any]:
    """Serialize a chaos spec to a plain mapping (no ``None``, TOML-safe)."""
    data: Dict[str, Any] = {"name": spec.name, "base": spec_to_dict(spec.base)}
    data["faults"] = [fault.to_value() for fault in spec.faults]
    if spec.recovery is not None:
        data["recovery"] = _recovery_to_value(spec.recovery)
    if spec.seeds:
        data["seeds"] = list(spec.seeds)
    return data


def chaos_with_overrides(spec: ChaosSpec, overrides: Mapping[str, Any]) -> ChaosSpec:
    """A copy of ``spec`` with dotted-path overrides applied (re-validated).

    Shares the override grammar of the scenario layer: ``base.users=30`` digs
    into the base scenario, ``recovery.max_retries=5`` / ``seeds=[0,1]``
    replace audit fields.
    """
    from repro.scenarios.spec import apply_overrides

    if not overrides:
        return spec
    return chaos_from_dict(apply_overrides(chaos_to_dict(spec), overrides))


def chaos_fingerprint(spec: ChaosSpec) -> str:
    """A stable digest of the audit's full canonical spec (for journal manifests)."""
    payload = json.dumps(chaos_to_dict(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- records --
@dataclass(frozen=True)
class ChaosRecord:
    """The uniform result of one chaos cell: one fault model x one seed.

    All fields are JSON scalars; the :meth:`to_dict` / :meth:`from_dict` round
    trip is lossless.  With ``measure_compute=false`` every field — the
    counters, the verdicts and the virtual ``elapsed_seconds`` — is a pure
    function of ``(spec, seed)``; ``fault_digest`` additionally pins the
    injected schedule itself (the determinism lock compares it across
    processes and ``PYTHONHASHSEED`` values).
    """

    name: str
    mechanism: str
    fault: str
    label: str
    instance: int
    seed: int
    users: int
    providers: int
    executors: int
    k: int
    recovery_enabled: bool
    max_retries: int
    aborted: bool
    degraded: bool
    terminated: bool
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    messages_lost: int
    faults_injected: int
    retransmissions: int
    duplicates_suppressed: int
    conservation_ok: bool
    replay_ok: bool
    store_repair_ok: bool
    fault_digest: str
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        """The cell's verdict: every audited invariant held."""
        return (
            self.terminated
            and self.conservation_ok
            and self.replay_ok
            and self.store_repair_ok
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mechanism": self.mechanism,
            "fault": self.fault,
            "label": self.label,
            "instance": self.instance,
            "seed": self.seed,
            "users": self.users,
            "providers": self.providers,
            "executors": self.executors,
            "k": self.k,
            "recovery_enabled": self.recovery_enabled,
            "max_retries": self.max_retries,
            "aborted": self.aborted,
            "degraded": self.degraded,
            "terminated": self.terminated,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_lost": self.messages_lost,
            "faults_injected": self.faults_injected,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "conservation_ok": self.conservation_ok,
            "replay_ok": self.replay_ok,
            "store_repair_ok": self.store_repair_ok,
            "fault_digest": self.fault_digest,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ChaosRecord":
        return ChaosRecord(
            name=data["name"],
            mechanism=data["mechanism"],
            fault=data["fault"],
            label=data["label"],
            instance=data["instance"],
            seed=data["seed"],
            users=data["users"],
            providers=data["providers"],
            executors=data["executors"],
            k=data["k"],
            recovery_enabled=data["recovery_enabled"],
            max_retries=data["max_retries"],
            aborted=data["aborted"],
            degraded=data["degraded"],
            terminated=data["terminated"],
            messages_sent=data["messages_sent"],
            messages_delivered=data["messages_delivered"],
            messages_dropped=data["messages_dropped"],
            messages_lost=data["messages_lost"],
            faults_injected=data["faults_injected"],
            retransmissions=data["retransmissions"],
            duplicates_suppressed=data["duplicates_suppressed"],
            conservation_ok=data["conservation_ok"],
            replay_ok=data["replay_ok"],
            store_repair_ok=data["store_repair_ok"],
            fault_digest=data["fault_digest"],
            elapsed_seconds=data["elapsed_seconds"],
        )


@dataclass
class ChaosResult:
    """All records of one audit, in grid order, plus the aggregate verdict."""

    name: str
    base: Dict[str, Any]
    records: List[ChaosRecord] = field(default_factory=list)
    executed_cells: int = 0
    resumed_cells: int = 0
    quarantined: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def failing_cells(self) -> List[ChaosRecord]:
        return [record for record in self.records if not record.ok]

    def is_clean(self) -> bool:
        """True when every cell held every invariant and nothing was quarantined."""
        return not self.failing_cells and not self.quarantined

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "chaos": self.name,
            "base": self.base,
            "clean": self.is_clean(),
            "records": [record.to_dict() for record in self.records],
        }
        if self.quarantined:
            data["quarantined"] = [dict(entry) for entry in self.quarantined]
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# --------------------------------------------------------------------- execution --
class ChaosContext:
    """Per-executor state of one audit: components and per-seed workloads.

    One instance backs one executor — the sequential loop or one parallel
    worker's chunk.  It memoises the mechanism once per audit and the workload
    / bids / latency model / provider ids once per seed; the fault plan and
    the network are deliberately rebuilt per run (a plan is stateful, and the
    replay invariant *requires* a from-scratch second run).  :meth:`close`
    releases engine resources (idempotent); always call it — or use the
    context as a context manager.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._mechanism = None
        self._per_seed: Dict[int, Dict[str, Any]] = {}

    # -- memoised components ------------------------------------------------------
    @property
    def mechanism(self):
        if self._mechanism is None:
            self._mechanism = build_mechanism(self.spec.base)
        return self._mechanism

    def _seed_state(self, instance: int) -> Dict[str, Any]:
        state = self._per_seed.get(instance)
        if state is not None:
            return state
        seed = self.spec.effective_seeds()[instance]
        scenario = spec_with_overrides(self.spec.base, {"seed": seed})
        topology = build_topology(scenario)
        if topology is not None:
            provider_ids = list(topology.gateways)
            if len(provider_ids) != scenario.providers:
                raise SpecError(
                    "base.topology",
                    f"topology produced {len(provider_ids)} gateways "
                    f"for providers={scenario.providers}",
                )
        else:
            provider_ids = default_provider_ids(scenario.providers)
        executor_ids = (
            provider_ids[: scenario.executors]
            if scenario.executors is not None
            else provider_ids
        )
        workload = build_workload(scenario)
        bids = workload.generate(
            scenario.users, scenario.providers, provider_ids=provider_ids, instance=0
        )
        state = {
            "scenario": scenario,
            "latency": build_latency_model(scenario, topology),
            "executor_ids": executor_ids,
            "bids": bids,
        }
        self._per_seed[instance] = state
        return state

    # -- one perturbed run --------------------------------------------------------
    def _run_once(self, point: int, instance: int) -> Dict[str, Any]:
        """One from-scratch run of the cell: fresh plan, fresh network."""
        state = self._seed_state(instance)
        scenario: ScenarioSpec = state["scenario"]
        model = self.spec.faults[point].build(f"faults[{point}]")
        plan = FaultPlan(
            [model], seed=scenario.seed, recovery=self.spec.effective_recovery()
        )
        auctioneer = DistributedAuctioneer(
            self.mechanism,
            providers=state["executor_ids"],
            config=scenario.config.to_config(),
            latency_model=state["latency"],
            seed=scenario.seed,
            measure_compute=scenario.measure_compute,
            fault_plan=plan,
        )
        try:
            report = auctioneer.run_from_bids(state["bids"])
        except QuiescenceError:
            return {"terminated": False, "report": None, "plan": plan}
        return {"terminated": True, "report": report, "plan": plan}

    @staticmethod
    def _replay_payload(run: Dict[str, Any], measure_compute: bool) -> Tuple[Any, ...]:
        """Everything the replay invariant compares between the two runs."""
        if not run["terminated"]:
            return ("hung", run["plan"].digest())
        report = run["report"]
        stats = report.stats
        payload: Tuple[Any, ...] = (
            run["plan"].digest(),
            report.outcome.aborted,
            report.outcome.degraded,
            stats.messages_sent,
            stats.messages_delivered,
            stats.messages_dropped,
            stats.messages_lost,
            stats.faults_injected,
            stats.retransmissions,
            stats.duplicates_suppressed,
        )
        if not measure_compute:
            # Virtual clocks are deterministic; measured handler CPU is not.
            payload += (report.outcome.elapsed_time,)
        return payload

    # -- cells ---------------------------------------------------------------------
    def run_cell(self, point: int, instance: int) -> ChaosRecord:
        """Run one ``fault x seed`` cell (twice: the replay invariant needs both)."""
        state = self._seed_state(instance)
        scenario: ScenarioSpec = state["scenario"]
        fault = self.spec.faults[point]
        recovery = self.spec.effective_recovery()

        first = self._run_once(point, instance)
        second = self._run_once(point, instance)
        replay_ok = self._replay_payload(
            first, scenario.measure_compute
        ) == self._replay_payload(second, scenario.measure_compute)

        terminated = first["terminated"] and second["terminated"]
        if first["terminated"]:
            report = first["report"]
            stats = report.stats
            conservation_ok = stats.messages_sent == (
                stats.messages_delivered + stats.messages_dropped + stats.messages_lost
            )
            aborted = report.outcome.aborted
            degraded = report.outcome.degraded
            elapsed = report.outcome.elapsed_time
            counters = (
                stats.messages_sent,
                stats.messages_delivered,
                stats.messages_dropped,
                stats.messages_lost,
                stats.faults_injected,
                stats.retransmissions,
                stats.duplicates_suppressed,
            )
            record = record_from_outcome(
                scenario, instance, report.outcome, self.mechanism, len(state["executor_ids"])
            )
        else:
            conservation_ok = False
            aborted = True
            degraded = False
            elapsed = 0.0
            counters = (0, 0, 0, 0, 0, 0, 0)
            record = None

        store_repair_ok = True
        torn = [m for m in first["plan"].torn_appends()]
        if torn and record is not None:
            store_repair_ok = all(
                _torn_repair_ok(self.spec, record, model.drop_bytes) for model in torn
            )

        return ChaosRecord(
            name=self.spec.name,
            mechanism=self.mechanism.name,
            fault=fault.kind,
            label=fault.display_label,
            instance=instance,
            seed=scenario.seed,
            users=scenario.users,
            providers=scenario.providers,
            executors=len(state["executor_ids"]),
            k=scenario.config.k,
            recovery_enabled=recovery.enabled,
            max_retries=recovery.max_retries,
            aborted=aborted,
            degraded=degraded,
            terminated=terminated,
            messages_sent=counters[0],
            messages_delivered=counters[1],
            messages_dropped=counters[2],
            messages_lost=counters[3],
            faults_injected=counters[4],
            retransmissions=counters[5],
            duplicates_suppressed=counters[6],
            conservation_ok=conservation_ok,
            replay_ok=replay_ok,
            store_repair_ok=store_repair_ok,
            fault_digest=first["plan"].digest(),
            elapsed_seconds=elapsed,
        )

    # -- lifecycle ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources the context created (idempotent)."""
        mechanism, self._mechanism = self._mechanism, None
        if mechanism is not None:
            close = getattr(mechanism, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ChaosContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _torn_repair_ok(spec: ChaosSpec, record: RunRecord, drop_bytes: int) -> bool:
    """The ``torn_append`` invariant: a torn journal repairs on resume.

    Journals two copies of the cell's record, tears ``drop_bytes`` off the
    file tail (the crash-mid-append signature), then resumes: the repaired
    journal must return a bit-identical prefix of what was appended, and
    re-appending the missing rounds must complete it to the full record set.
    The journal lives in a throwaway directory; nothing about the cell's
    verdict depends on the path.
    """
    from repro.scenarios.store import JsonlStoreBackend

    fingerprint = chaos_fingerprint(spec) + ":torn"
    records = {(0, 0): record, (0, 1): record}
    workdir = tempfile.mkdtemp(prefix="repro-chaos-torn-")
    try:
        path = os.path.join(workdir, "journal.jsonl")
        backend = JsonlStoreBackend(path, record_type=RunRecord)
        backend.begin(spec.base, total_rounds=2, fingerprint=fingerprint)
        for (point, instance), row in sorted(records.items()):
            backend.append(point, instance, row)
        backend.close()

        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, size - drop_bytes))

        backend = JsonlStoreBackend(path, record_type=RunRecord)
        completed = backend.begin(
            spec.base, total_rounds=2, resume=True, fingerprint=fingerprint
        )
        if set(completed) - set(records):
            return False
        if any(completed[key] != records[key] for key in completed):
            return False
        for key in sorted(set(records) - set(completed)):
            backend.append(key[0], key[1], records[key])
        backend.close()

        _manifest, final = JsonlStoreBackend(path, record_type=RunRecord).read(
            expected_fingerprint=fingerprint
        )
        return final == records
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def execute_cells(
    spec: ChaosSpec, cells: Sequence[Tuple[int, int]]
) -> Iterator[Tuple[int, int, ChaosRecord]]:
    """Run the given ``(point, instance)`` cells through one chaos context.

    Shared by the sequential path and the parallel workers
    (:func:`repro.scenarios.chaos_parallel.execute_chunk`), so the two cannot
    drift apart on how components are resolved or seeds memoised.  Cells are
    executed grouped by seed so each seed's workload is generated exactly
    once, whatever order the caller passed.
    """
    ordered = sorted(cells, key=lambda cell: (cell[1], cell[0]))
    with ChaosContext(spec) as context:
        for point, instance in ordered:
            yield point, instance, context.run_cell(point, instance)


def run_chaos(
    spec: ChaosSpec,
    *,
    workers: Union[None, int, str] = None,
    backend: Optional[str] = None,
    store=None,
    store_format: Optional[str] = None,
    resume: bool = False,
    failure_mode: str = "raise",
) -> ChaosResult:
    """Run the full fault grid and collect the records in grid order.

    Args:
        spec: the audit specification.
        workers: run cells in a pool of worker processes (``"auto"`` sizes the
            pool from the CPUs this process may actually use; see
            :func:`~repro.scenarios.dispatch.resolve_workers`).  Chunks are
            grouped by seed so workload generation stays amortised; records
            are bit-identical to the sequential path on all deterministic
            fields, in the same grid order.
        backend: dispatch parallel chunks through a named
            :data:`~repro.scenarios.dispatch.EXECUTOR_BACKENDS` entry instead
            of the default local ``"process"`` pool.
        store: a results journal — a path or a
            :class:`~repro.scenarios.store.ResultsStore` — appended to as cells
            complete; doubles as the audit artifact and the ``resume``
            checkpoint.
        store_format: the :data:`~repro.scenarios.store.STORE_BACKENDS` file
            format for a fresh journal (existing journals are sniffed).
        resume: with ``store``, skip cells the journal already holds (its
            manifest must match this audit) and run only the missing ones.
        failure_mode: ``"raise"`` (default) fails fast on a worker error;
            ``"quarantine"`` opts into the crash-tolerant executor — bounded
            chunk retries, worker death survived, and cells that keep failing
            recorded in :attr:`ChaosResult.quarantined` (and journaled) while
            the rest of the grid completes.
    """
    from repro.scenarios.dispatch import ChunkQuarantine, resolve_workers

    if failure_mode not in ("raise", "quarantine"):
        raise SpecError(
            "failure_mode",
            f"failure_mode must be 'raise' or 'quarantine', got {failure_mode!r}",
        )
    plan = resolve_workers(workers, backend=backend)
    # Resolve every fault model up front (and discard the results): a typo'd
    # fault kind or bad parameter fails with its path-precise SpecError here,
    # before any journal is opened or simulation runs.
    for index, fault in enumerate(spec.faults):
        fault.build(f"faults[{index}]")
    cells = spec.cells()
    seeds = spec.effective_seeds()

    journal = _as_store(store, store_format)
    completed: Dict[Tuple[int, int], ChaosRecord] = {}
    if journal is not None:
        completed = journal.begin(
            spec,
            total_rounds=len(cells) * len(seeds),
            resume=resume,
            fingerprint=chaos_fingerprint(spec),
        )

    pending = [
        (point, instance)
        for point in cells
        for instance in range(len(seeds))
        if (point, instance) not in completed
    ]
    fresh: Dict[Tuple[int, int], ChaosRecord] = {}
    quarantined: List[Dict[str, Any]] = []
    quarantined_keys: set = set()
    try:
        if plan.parallel and pending:
            from repro.scenarios.chaos_parallel import execute_parallel

            stream = execute_parallel(
                spec, pending, plan.workers, plan.backend, failure_mode
            )
        else:
            stream = execute_cells(spec, pending)
        try:
            for item in stream:
                if isinstance(item, ChunkQuarantine):
                    for q_point, q_instance in item.items:
                        quarantined.append(
                            {"point": q_point, "instance": q_instance, "error": item.error}
                        )
                        quarantined_keys.add((q_point, q_instance))
                        if journal is not None:
                            journal.append_quarantine(
                                q_point, q_instance, item.error, item.traceback
                            )
                    continue
                point, instance, record = item
                fresh[(point, instance)] = record
                if journal is not None:
                    journal.append(point, instance, record)
        finally:
            stream.close()
    finally:
        if journal is not None:
            journal.close()

    result = ChaosResult(
        name=spec.name,
        base=spec_to_dict(spec.base),
        executed_cells=len(fresh),
        resumed_cells=len(completed),
        quarantined=quarantined,
    )
    for point in cells:
        for instance in range(len(seeds)):
            record = fresh.get((point, instance))
            if record is None and (point, instance) in quarantined_keys:
                continue  # the executor gave up on this cell; no record exists
            if record is None:
                record = completed[(point, instance)]
            result.records.append(record)
    # Observability hook (see repro.obs): audit-level counters only — the
    # per-injection instants and network counters are emitted by the fault
    # plane and SimNetwork themselves when cells run in this process.
    obs = current_observation()
    if obs is not None and obs.metrics is not None:
        obs.metrics.counter("chaos.cells_executed").inc(len(fresh))
        obs.metrics.counter("chaos.cells_reused").inc(len(completed))
        obs.metrics.counter("chaos.cells_quarantined").inc(len(quarantined))
        obs.metrics.counter("chaos.cells_failed").inc(
            sum(1 for record in result.records if not record.ok)
        )
    return result


def _as_store(store, store_format=None):
    if store is None:
        return None
    from repro.scenarios.store import ResultsStore

    if isinstance(store, ResultsStore):
        store.record_type = ChaosRecord
        if store_format is not None:
            store.format = store_format
        return store
    return ResultsStore(store, record_type=ChaosRecord, format=store_format)
