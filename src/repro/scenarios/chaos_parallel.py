"""Parallel chaos execution: fault-grid cells dispatched through a backend.

Cells are grouped into chunks by seed (the instance index) — per-seed state
(workload generation, latency model, provider ids) is what a
:class:`~repro.scenarios.chaos.ChaosContext` can amortise — then the largest
chunks split toward ``workers * CHUNKS_PER_WORKER`` total, exactly like the
sweep and resilience chunkers.  Workers rehydrate the spec from its
``chaos_to_dict`` payload and run their cells through the shared
:func:`~repro.scenarios.chaos.execute_cells`, so parallel records are
bit-identical to sequential ones on every deterministic field.

A chunk item is a bare ``(point, instance)`` cell.  That shape is the
crash-tolerance contract with the dispatch layer: a worker failure raises
:class:`~repro.scenarios.dispatch.ChunkExecutionError` whose
``remaining_items`` are cells, so the crash-tolerant executor retries,
bisects and ultimately quarantines *individual cells*, and the sentinel's
``items`` unpack directly into ``(point, instance)`` pairs for
``run_chaos``'s journal.
"""

from __future__ import annotations

import functools
import pickle
import traceback
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.scenarios.dispatch import (
    CHUNKS_PER_WORKER,
    ChunkExecutionError,
    create_backend,
    split_chunks,
)
from repro.scenarios.chaos import (
    ChaosContext,
    ChaosRecord,
    ChaosSpec,
    chaos_from_dict,
    chaos_to_dict,
)

__all__ = ["chunk_cells", "execute_chunk", "execute_parallel"]

#: One unit of worker work: a (fault index, seed index) cell.
Cell = Tuple[int, int]


def chunk_cells(cells: Sequence[Cell], workers: int) -> List[List[Cell]]:
    """Group pending cells into worker chunks, by seed first.

    Cells of one seed start out in one chunk (they share the context's
    per-seed state), then the largest chunks are split toward
    ``workers * CHUNKS_PER_WORKER`` — a single-seed audit would otherwise
    serialise.
    """
    grouped: Dict[int, List[Cell]] = {}
    for point, instance in cells:
        grouped.setdefault(instance, []).append((point, instance))
    return split_chunks(list(grouped.values()), workers * CHUNKS_PER_WORKER)


def execute_chunk(
    payload: Dict[str, Any], cells: List[Cell]
) -> List[Tuple[int, int, ChaosRecord]]:
    """Worker body: run one chunk of cells through a fresh chaos context.

    A failure partway through raises
    :class:`~repro.scenarios.dispatch.ChunkExecutionError` carrying the cells
    completed so far, the worker traceback as a string, and the cells still
    pending — the cell that raised first, then everything unreached — so the
    crash-tolerant executor can retry and quarantine at cell granularity.
    """
    spec = chaos_from_dict(payload)
    ordered = sorted(cells, key=lambda cell: (cell[1], cell[0]))
    results: List[Tuple[int, int, ChaosRecord]] = []
    context = ChaosContext(spec)
    try:
        for position, (point, instance) in enumerate(ordered):
            try:
                results.append((point, instance, context.run_cell(point, instance)))
            except Exception as exc:
                remaining: List[Cell] = list(ordered[position:])
                try:  # carry the typed error along when it survives pickling
                    cause = pickle.loads(pickle.dumps(exc))
                except Exception:
                    cause = None
                raise ChunkExecutionError(
                    results, traceback.format_exc(), remaining, cause
                ) from None
    finally:
        context.close()
    return results


def execute_parallel(
    spec: ChaosSpec,
    cells: Sequence[Cell],
    workers: int,
    backend: str = "process",
    failure_mode: str = "raise",
) -> Iterator[Any]:
    """Run pending cells through an executor backend, yielding as they land.

    Yields ``(point, instance, record)`` triples in *completion* order —
    ``run_chaos`` owns grid-order reassembly and journaling.  Under
    ``failure_mode="quarantine"``, cells that keep failing stream back as
    :class:`~repro.scenarios.dispatch.ChunkQuarantine` sentinels whose
    ``items`` are ``(point, instance)`` pairs.
    """
    chunks = chunk_cells(cells, workers)
    if not chunks:
        return
    worker = functools.partial(execute_chunk, chaos_to_dict(spec))
    executor = create_backend(backend)
    executor.failure_mode = failure_mode
    yield from executor.execute(chunks, worker, workers)
