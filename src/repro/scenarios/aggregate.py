"""Streaming aggregation over results journals: summaries without record lists.

The results plane's aggregation layer (see DESIGN.md, "The results plane").
A :class:`StreamingSummary` consumes a journal's rows — one dict at a time
from the JSONL backend, one column array per chunk from the columnar backend
— and maintains constant-size state per numeric column: count, sum, min, max
and a fixed-bin log-domain histogram from which quantiles are estimated.  No
code path ever materialises the full record list; memory is O(columns), not
O(records), which is what lets ``repro-auction results summarize`` work on
journals far larger than RAM.

Determinism contract: both backends funnel values through the same
:meth:`MetricAccumulator.update` NumPy kernel, so histogram bucket counts —
and therefore quantile estimates — are bit-identical however the rows were
batched.  Only ``sum`` (and hence ``mean``) may differ in the last ulp
between batchings, because float addition is not associative; consumers that
need exact cross-backend equality compare records, not summaries.

Quantiles are *estimates* with bounded relative error: values are placed in
one of :data:`~MetricAccumulator.BINS` bins, linear in
``sign(v) * log1p(|v|)`` over ``[-SPAN, SPAN]`` — symmetric-log bucketing in
the spirit of HDR-histogram latency reporters (cf. spirit's
``bench-mc-client/src/metrics.rs``).  At the shipped resolution one bin spans
~3.1% relative width, and estimates are clamped to the exact ``[min, max]``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "MetricAccumulator",
    "StreamingSummary",
    "derived_throughput",
    "render_summary",
]

#: Quantiles every summary reports, as (label, q) pairs.
QUANTILES: Tuple[Tuple[str, float], ...] = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class MetricAccumulator:
    """Constant-size streaming state for one numeric column.

    ``update`` takes a float64 array (any batching); ``quantile`` inverts the
    histogram.  All state is O(BINS), independent of how many values passed.
    """

    #: Histogram resolution: bins linear in the transformed domain.
    BINS = 4096
    #: Transformed domain half-width: log1p(|v|) <= 64 covers |v| < ~6e27.
    SPAN = 64.0

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._counts = np.zeros(self.BINS, dtype=np.int64)

    def update(self, values: Any) -> None:
        """Fold a batch of values in (list or array; empty batches are no-ops)."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        self.count += int(array.size)
        self.total += float(array.sum())
        self.minimum = min(self.minimum, float(array.min()))
        self.maximum = max(self.maximum, float(array.max()))
        transformed = np.sign(array) * np.log1p(np.abs(array))
        width = (2.0 * self.SPAN) / self.BINS
        indices = np.clip(
            ((transformed + self.SPAN) / width).astype(np.int64), 0, self.BINS - 1
        )
        self._counts += np.bincount(indices, minlength=self.BINS)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from the histogram (clamped to [min, max])."""
        if not self.count:
            return None
        target = min(max(int(math.ceil(q * self.count)), 1), self.count)
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, target))
        width = (2.0 * self.SPAN) / self.BINS
        center = -self.SPAN + (index + 0.5) * width
        value = math.copysign(math.expm1(abs(center)), center)
        return min(max(value, self.minimum), self.maximum)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }
        for label, q in QUANTILES:
            data[label] = self.quantile(q)
        return data


class StreamingSummary:
    """Per-column accumulators over a stream of journal rows.

    Two feeding modes, one kernel:

    * :meth:`add_row` — row dicts (the JSONL backend).  Rows are buffered and
      flushed through :meth:`add_column` in fixed-size batches so the NumPy
      bucketing arithmetic is identical to the columnar path.
    * :meth:`add_column` / :meth:`add_flags` — whole column arrays (the
      columnar backend, one call per chunk).

    Numeric columns (int/float) get a :class:`MetricAccumulator`; bool columns
    get true/total counts; strings and structured values are skipped — they
    have no streaming aggregate.  Column typing is decided by the first row or
    array seen for each name.
    """

    #: Row-mode batch size: rows buffered before one vectorised flush.
    BATCH_ROWS = 4096

    def __init__(self) -> None:
        self.records = 0
        self.metrics: Dict[str, MetricAccumulator] = {}
        self.flags: Dict[str, List[int]] = {}  # name -> [total, true]
        self._row_buffer: Dict[str, List[float]] = {}
        self._buffered = 0

    # -- row mode (jsonl) -----------------------------------------------------------
    def add_row(self, row: Mapping[str, Any]) -> None:
        self.records += 1
        for name, value in row.items():
            if isinstance(value, bool):
                state = self.flags.setdefault(name, [0, 0])
                state[0] += 1
                state[1] += int(value)
            elif isinstance(value, (int, float)):
                self._row_buffer.setdefault(name, []).append(float(value))
        self._buffered += 1
        if self._buffered >= self.BATCH_ROWS:
            self.flush()

    def flush(self) -> None:
        """Drain the row buffer through the vectorised column path."""
        buffer, self._row_buffer = self._row_buffer, {}
        self._buffered = 0
        for name in buffer:
            self._metric(name).update(buffer[name])

    # -- column mode (columnar) ------------------------------------------------------
    def add_records(self, count: int) -> None:
        """Count rows fed via the column mode (one call per chunk)."""
        self.records += int(count)

    def add_column(self, name: str, values: Any) -> None:
        self._metric(name).update(values)

    def add_flags(self, name: str, values: Any) -> None:
        array = np.asarray(values, dtype=bool).ravel()
        state = self.flags.setdefault(name, [0, 0])
        state[0] += int(array.size)
        state[1] += int(array.sum())

    # -- results ---------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        self.flush()
        return {
            "records": self.records,
            "columns": {name: self.metrics[name].to_dict() for name in self.metrics},
            "flags": {
                name: {"count": state[0], "true": state[1]}
                for name, state in self.flags.items()
            },
            "throughput": derived_throughput(self.metrics),
        }

    def _metric(self, name: str) -> MetricAccumulator:
        metric = self.metrics.get(name)
        if metric is None:
            metric = self.metrics[name] = MetricAccumulator()
        return metric


def derived_throughput(metrics: Mapping[str, MetricAccumulator]) -> Dict[str, float]:
    """Throughput aggregates derivable from the well-known record columns.

    When the stream carried ``elapsed_seconds`` (every sweep record does),
    total modelled time relates the other totals: messages/sec, bytes/sec and
    rounds/sec over the journal as a whole.  Absent or zero elapsed time
    yields an empty mapping rather than infinities.
    """
    elapsed = metrics.get("elapsed_seconds")
    if elapsed is None or elapsed.total <= 0.0:
        return {}
    derived: Dict[str, float] = {"rounds_per_second": elapsed.count / elapsed.total}
    for source, label in (("messages", "messages_per_second"), ("bytes", "bytes_per_second")):
        metric = metrics.get(source)
        if metric is not None:
            derived[label] = metric.total / elapsed.total
    return derived


def render_summary(summary: Mapping[str, Any]) -> str:
    """Human-readable rendering of a :meth:`ResultsStore.summary` payload."""
    lines = [
        f"journal : {summary.get('path', '?')} ({summary.get('backend', '?')})",
        f"sweep   : {summary.get('sweep', '?')}  "
        f"records {summary.get('records', 0)}/{summary.get('total_rounds', '?')}",
    ]
    columns: Mapping[str, Mapping[str, Any]] = summary.get("columns", {})
    if columns:
        header = (
            f"{'column':<20s} {'count':>8s} {'mean':>12s} {'min':>12s} "
            f"{'p50':>12s} {'p90':>12s} {'p99':>12s} {'max':>12s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, stats in columns.items():
            lines.append(
                f"{name:<20s} {stats['count']:>8d} "
                + " ".join(_cell(stats[key]) for key in ("mean", "min", "p50", "p90", "p99", "max"))
            )
    flags: Mapping[str, Mapping[str, int]] = summary.get("flags", {})
    for name, state in flags.items():
        lines.append(f"{name:<20s} {state['true']}/{state['count']} true")
    throughput: Mapping[str, float] = summary.get("throughput", {})
    for label, value in throughput.items():
        lines.append(f"{label:<20s} {value:,.1f}")
    return "\n".join(lines)


def _cell(value: Optional[float]) -> str:
    return f"{value:>12.6g}" if value is not None else f"{'-':>12s}"


def batched(rows: Iterable[Mapping[str, Any]], summary: StreamingSummary) -> None:
    """Feed every row of ``rows`` into ``summary`` (convenience for backends)."""
    for row in rows:
        summary.add_row(row)
    summary.flush()
