"""Registries mapping spec *kinds* to component factories.

This is the extension contract of the scenario layer: adding a new mechanism,
workload, latency model, bidder strategy or topology to the library means
registering a factory under a string kind — after which it is reachable from
every spec file, every CLI invocation and every sweep, with no new constructor
plumbing anywhere (see DESIGN.md, "The scenario registry contract").

Factories are plain callables invoked with the spec's keyword parameters.
``TypeError``/``ValueError`` raised by a factory is converted into a
:class:`~repro.scenarios.spec.SpecError` naming the offending spec path, so a
typo in a spec file produces an actionable message rather than a traceback.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Dict, List, Optional

from repro.scenarios.spec import ComponentSpec, SpecError

__all__ = [
    "Registry",
    "MECHANISMS",
    "WORKLOADS",
    "LATENCIES",
    "BIDDER_STRATEGIES",
    "TOPOLOGIES",
    "ADVERSARIES",
    "SCHEDULERS",
]


class Registry:
    """A named mapping from string kinds to component factories."""

    def __init__(self, label: str) -> None:
        self.label = label
        self._factories: Dict[str, Callable[..., Any]] = {}

    # -- registration --------------------------------------------------------------
    def register(self, kind: str, factory: Optional[Callable[..., Any]] = None):
        """Register ``factory`` under ``kind`` (usable as a decorator).

        Re-registering an existing kind raises — shadowing a built-in would
        silently change what every existing spec file means.  Use
        :meth:`unregister` first if replacement is really intended.
        """

        def _register(func: Callable[..., Any]) -> Callable[..., Any]:
            if kind in self._factories:
                raise ValueError(f"{self.label} kind {kind!r} is already registered")
            self._factories[kind] = func
            return func

        return _register(factory) if factory is not None else _register

    def unregister(self, kind: str) -> None:
        self._factories.pop(kind, None)

    def available(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, kind: str) -> bool:
        return kind in self._factories

    # -- construction --------------------------------------------------------------
    def create(self, component: ComponentSpec, path: str, **extra: Any) -> Any:
        """Build the component, naming ``path`` in any validation error.

        ``extra`` carries runner-supplied keyword arguments (e.g. the scenario
        seed); they are only passed to factories that accept them, so factories
        without a ``seed`` parameter stay trivially simple.
        """
        factory = self._factories.get(component.kind)
        if factory is None:
            raise SpecError(
                path,
                f"unknown {self.label} kind {component.kind!r}; "
                f"available: {', '.join(self.available())}",
            )
        kwargs = dict(component.params)
        if extra:
            accepted = _accepted_parameters(factory)
            for key, value in extra.items():
                if key in kwargs:
                    continue  # explicit spec parameters win over runner defaults
                if accepted is None or key in accepted:
                    kwargs[key] = value
        try:
            return factory(**kwargs)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(
                path, f"invalid parameters for {self.label} {component.kind!r}: {exc}"
            ) from exc


@functools.lru_cache(maxsize=None)
def _accepted_parameters(factory: Callable[..., Any]) -> Optional[frozenset]:
    """Keyword names ``factory`` accepts, or ``None`` when it takes ``**kwargs``."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return None
    names = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return frozenset(names)


MECHANISMS = Registry("mechanism")
WORKLOADS = Registry("workload")
LATENCIES = Registry("latency model")
BIDDER_STRATEGIES = Registry("bidder strategy")
TOPOLOGIES = Registry("topology")

#: Provider deviations for resilience audits.  A factory takes the adversary's
#: spec parameters and returns a *node factory* with the honest constructor
#: signature ``(provider_input, algorithm, config, expected_users, providers)``,
#: directly usable as :attr:`repro.adversary.coalition.Coalition.deviant_factory`.
ADVERSARIES = Registry("adversary")

#: Message schedules for resilience audits.  A factory returns a fresh
#: :class:`repro.net.scheduler.Scheduler`; instances reset between runs via
#: ``begin_run``, so one instance may be shared across the runs of one audit.
SCHEDULERS = Registry("schedule")


# ---------------------------------------------------------------- built-in kinds --
def _register_builtins() -> None:
    from repro.adversary.bidder_behaviors import (
        InconsistentBidder,
        InvalidBidder,
        ScalingBidder,
        SilentBidder,
    )
    from repro.auctions.double_auction import DoubleAuction
    from repro.auctions.greedy import GreedyStandardAuction
    from repro.auctions.standard_auction import StandardAuction
    from repro.auctions.vcg import ExactVCGAuction
    from repro.community.topology import generate_community_network
    from repro.community.workload import (
        DoubleAuctionWorkload,
        StandardAuctionWorkload,
        VRSessionWorkload,
    )
    from repro.adversary.provider_behaviors import (
        CrashingProviderNode,
        EquivocatingProviderNode,
        InputForgingProviderNode,
        MessageDroppingProviderNode,
        OutputTamperingProviderNode,
    )
    from repro.core.provider_protocol import ProviderInput
    from repro.net.latency import (
        BandwidthLatencyModel,
        ConstantLatencyModel,
        UniformLatencyModel,
        ZeroLatencyModel,
    )
    from repro.net.scheduler import (
        AdversarialScheduler,
        FairScheduler,
        RandomScheduler,
        RoundRobinScheduler,
    )

    MECHANISMS.register("double", DoubleAuction)
    MECHANISMS.register("standard", StandardAuction)
    MECHANISMS.register("vcg", ExactVCGAuction)
    MECHANISMS.register("greedy", GreedyStandardAuction)

    WORKLOADS.register("double", DoubleAuctionWorkload)
    WORKLOADS.register("standard", StandardAuctionWorkload)
    WORKLOADS.register("vr_sessions", VRSessionWorkload)

    LATENCIES.register("zero", ZeroLatencyModel)
    LATENCIES.register("constant", ConstantLatencyModel)
    LATENCIES.register("uniform", UniformLatencyModel)
    LATENCIES.register("bandwidth", BandwidthLatencyModel)
    # The WAN-ish model both figure experiments use.  This registration is the
    # single source of the calibration constants; bench.harness's
    # default_latency_model() delegates here.
    LATENCIES.register(
        "wan",
        functools.partial(BandwidthLatencyModel, base=0.003, bandwidth_bytes_per_s=12.5e6, jitter=0.001),
    )
    # "community" is resolved by the runner from the generated topology; the
    # registration here only reserves the kind so it shows up in listings.
    LATENCIES.register("community", _community_latency_placeholder)

    BIDDER_STRATEGIES.register("inconsistent", InconsistentBidder)
    BIDDER_STRATEGIES.register("silent", SilentBidder)
    BIDDER_STRATEGIES.register("invalid", InvalidBidder)
    BIDDER_STRATEGIES.register("scaling", ScalingBidder)

    TOPOLOGIES.register("community", generate_community_network)

    # Adversary factories take the spec's keyword parameters and return
    # coalition node factories.  Explicit keyword signatures (no **kwargs)
    # matter: Registry.create converts a bad parameter into a path-precise
    # SpecError, and run_resilience resolves every reference up front — so a
    # typo fails before any simulation runs, not as a TypeError mid-audit.
    def _equivocate(tag_substring: str = "|value", victim_fraction: float = 0.5):
        return functools.partial(
            EquivocatingProviderNode,
            tag_substring=tag_substring,
            victim_fraction=float(victim_fraction),
        )

    def _drop_messages(tag_substring: str = "|echo"):
        return functools.partial(MessageDroppingProviderNode, tag_substring=tag_substring)

    def _crash(max_sends: int = 5):
        return functools.partial(CrashingProviderNode, max_sends=int(max_sends))

    def _tamper_output(bonus: float = 1.0):
        return functools.partial(OutputTamperingProviderNode, bonus=float(bonus))

    def _forge_bids(factor: float = 2.0):
        factor = float(factor)

        def forge(provider_input):
            forged = {}
            for user_id, bid in provider_input.received_user_bids.items():
                if hasattr(bid, "with_unit_value"):
                    bid = bid.with_unit_value(bid.unit_value * factor)
                forged[user_id] = bid
            return ProviderInput(
                provider_input.provider_id,
                forged,
                dict(provider_input.received_provider_asks),
            )

        return functools.partial(InputForgingProviderNode, forge=forge)

    ADVERSARIES.register("equivocate", _equivocate)
    ADVERSARIES.register("drop_messages", _drop_messages)
    ADVERSARIES.register("crash", _crash)
    ADVERSARIES.register("tamper_output", _tamper_output)
    ADVERSARIES.register("forge_bids", _forge_bids)

    def _adversarial_schedule(targets=(), max_deferrals: int = 16):
        if isinstance(targets, str):
            targets = (targets,)
        return AdversarialScheduler(
            targets=frozenset(targets), max_deferrals=int(max_deferrals)
        )

    SCHEDULERS.register("fair", FairScheduler)
    SCHEDULERS.register("round_robin", RoundRobinScheduler)
    SCHEDULERS.register("random", RandomScheduler)
    SCHEDULERS.register("adversarial", _adversarial_schedule)


def _community_latency_placeholder(**kwargs: Any):
    raise ValueError(
        "the 'community' latency model is derived from the scenario topology; "
        "set 'topology' in the spec instead of instantiating it directly"
    )


_register_builtins()
