"""First-class resilience audits: the paper's k-resilience claim as a workload.

Definition 2 of the paper makes the repo's central scientific claim: the
distributed simulation is a *k-resilient ex-post equilibrium* — no coalition of
at most ``k`` providers can profit by deviating, under every fair schedule.
:func:`repro.gametheory.resilience.check_k_resilience` verifies that claim for
one hand-wired ``(auctioneer, bids, coalitions)`` triple and remains the
supported low-level API.  This module promotes it to a declarative, sweepable
subsystem mirroring the scenario layer:

* :class:`AdversarySpec` — one deviation from the library in
  :mod:`repro.adversary.provider_behaviors`, referenced by string kind through
  the ``ADVERSARIES`` registry (``equivocate``, ``drop_messages``, ``crash``,
  ``tamper_output``, ``forge_bids``, plus anything user-registered);
* :class:`ResilienceSpec` — a frozen, JSON/TOML-serializable audit: a base
  :class:`~repro.scenarios.spec.ScenarioSpec` (mechanism, workload, size,
  config, latency), the coalition bound ``k`` (or explicit coalitions), the
  deviation library, the schedules (``SCHEDULERS`` registry) and the seeds;
* :class:`ResilienceRecord` — the uniform, JSON-round-trippable result of one
  audit cell ``(schedule x coalition x deviation) x seed``;
* :func:`run_resilience` — the executor: sequential, or parallel over worker
  processes (``workers=N``) with journaled resume (``store=path``), bit-identical
  to the sequential path on all deterministic fields.

**Honest-baseline memoisation guarantee**: within one executor (the sequential
loop or one worker chunk) the honest run is solved exactly once per
``(schedule, seed)`` group and shared by every cell of that group — and because
the simulation is a pure function of ``(mechanism, workload, schedule, seed)``,
recomputing it in another worker yields the bit-identical baseline, so chunking
can never change a verdict.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.adversary.coalition import Coalition
from repro.community.workload import default_provider_ids
from repro.core.framework import DistributedAuctioneer, SimulationReport
from repro.gametheory.utility import outcome_provider_utility
from repro.obs.context import current_observation
from repro.scenarios.registry import ADVERSARIES, SCHEDULERS
from repro.scenarios.runner import (
    build_latency_model,
    build_mechanism,
    build_topology,
    build_workload,
)
from repro.scenarios.spec import (
    ComponentSpec,
    ScenarioSpec,
    SpecError,
    spec_from_dict,
    spec_to_dict,
    spec_with_overrides,
)

__all__ = [
    "AdversarySpec",
    "ResilienceSpec",
    "ResilienceRecord",
    "ResilienceResult",
    "AuditContext",
    "resilience_from_dict",
    "resilience_to_dict",
    "resilience_with_overrides",
    "resilience_fingerprint",
    "run_resilience",
    "execute_cells",
    "PROFIT_TOLERANCE",
]

#: Gains below this are treated as zero (same tolerance as
#: :class:`repro.gametheory.resilience.DeviationOutcome`).
PROFIT_TOLERANCE = 1e-9

#: The default deviation library of :meth:`ResilienceSpec.effective_adversaries`:
#: one representative of every deviation family in
#: :mod:`repro.adversary.provider_behaviors`.
DEFAULT_ADVERSARIES = (
    ("equivocate", {}),
    ("tamper_output", {"bonus": 5.0}),
    ("drop_messages", {}),
    ("crash", {"max_sends": 4}),
)


@dataclass(frozen=True)
class AdversarySpec:
    """One deviation from the library, referenced by registry kind.

    In spec files an adversary is either a bare string (``"equivocate"``) or a
    table whose remaining keys are the factory parameters
    (``{"kind": "tamper_output", "bonus": 5.0}``); an optional ``label``
    overrides the display label echoed into every record.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    RESERVED_KEYS = frozenset({"kind", "label"})

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError("adversaries.kind", "adversary kind must be a non-empty string")
        object.__setattr__(self, "params", dict(self.params) if self.params else {})
        reserved = self.RESERVED_KEYS & set(self.params)
        if reserved:
            raise SpecError(
                "adversaries",
                f"adversary parameters may not use the reserved keys {sorted(reserved)}",
            )

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        return f"{self.kind}({inner})"

    def component(self) -> ComponentSpec:
        return ComponentSpec(self.kind, self.params)

    @staticmethod
    def from_value(value: Any, path: str) -> "AdversarySpec":
        if isinstance(value, AdversarySpec):
            return value
        if isinstance(value, str):
            return AdversarySpec(value)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", None)
            if not isinstance(kind, str) or not kind:
                raise SpecError(path, "expected a 'kind' string in the adversary table")
            label = data.pop("label", None)
            if label is not None and not isinstance(label, str):
                raise SpecError(f"{path}.label", "adversary label must be a string")
            try:
                return AdversarySpec(kind, data, label)
            except SpecError as exc:
                raise SpecError(path, exc.message) from exc
        raise SpecError(path, f"expected a string or a table, got {type(value).__name__}")

    def to_value(self) -> Any:
        if not self.params and self.label is None:
            return self.kind
        data: Dict[str, Any] = {"kind": self.kind}
        if self.label is not None:
            data["label"] = self.label
        data.update(self.params)
        return data


#: One coalition selector: provider ids (strings) and/or executor indices (ints).
CoalitionSelector = Tuple[Union[str, int], ...]

#: One audit cell before the seed dimension: indices into the spec's
#: ``schedules`` / expanded coalition list / effective adversary list.
Cell = Tuple[int, int, int]


@dataclass(frozen=True)
class ResilienceSpec:
    """A complete, serializable description of one resilience audit.

    Attributes:
        name: free-form label, echoed into every record and the journal manifest.
        base: the honest scenario being audited.  Must use the ``distributed``
            runner — k-resilience is a claim about the provider protocol.
        k: maximum coalition size for generated coalitions; defaults to the
            base config's ``k`` (the paper audits exactly the bound it claims).
        coalitions: explicit coalition selectors — each a list of provider ids
            (strings) and/or executor indices (ints).  Empty means *generate*:
            every subset of the executors of size ``1..k`` in lexicographic
            index order, capped by ``max_coalitions``.
        max_coalitions: cap on the number of generated coalitions (``None`` =
            no cap).  Ignored for explicit ``coalitions``.
        adversaries: the deviation library; empty means the built-in default
            library (one representative per deviation family).
        schedules: message schedules to audit under (``SCHEDULERS`` registry
            kinds); the paper quantifies over fair schedules, so the default is
            the deterministic earliest-arrival ``fair`` schedule.
        seeds: master seeds; each reruns the whole grid with the base scenario
            reseeded (fresh workload, jitter and protocol randomness).  Empty
            means the base scenario's own seed.
    """

    name: str = "resilience"
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    k: Optional[int] = None
    coalitions: Tuple[CoalitionSelector, ...] = ()
    max_coalitions: Optional[int] = None
    adversaries: Tuple[AdversarySpec, ...] = ()
    schedules: Tuple[ComponentSpec, ...] = (ComponentSpec("fair"),)
    seeds: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base", spec_from_dict(self.base))
        if self.base.runner != "distributed":
            raise SpecError(
                "base.runner",
                "resilience audits simulate deviating *providers*, which only the "
                f"'distributed' runner hosts (got runner={self.base.runner!r})",
            )
        object.__setattr__(
            self,
            "adversaries",
            tuple(
                AdversarySpec.from_value(adversary, f"adversaries[{i}]")
                for i, adversary in enumerate(self.adversaries)
            ),
        )
        object.__setattr__(
            self,
            "schedules",
            tuple(
                ComponentSpec.from_value(schedule, f"schedules[{i}]")
                for i, schedule in enumerate(self.schedules)
            ),
        )
        if not self.schedules:
            raise SpecError("schedules", "need at least one schedule")
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        coalitions = []
        for i, selectors in enumerate(self.coalitions):
            coalitions.append(_coalition_selector(selectors, f"coalitions[{i}]"))
        object.__setattr__(self, "coalitions", tuple(coalitions))
        executors = self.executor_count()
        if self.k is not None:
            if self.k < 1:
                raise SpecError("k", "coalition bound k must be at least 1")
            if self.k >= executors:
                raise SpecError(
                    "k",
                    f"coalition bound k={self.k} leaves no honest executor "
                    f"(executors={executors})",
                )
        if self.max_coalitions is not None and self.max_coalitions < 1:
            raise SpecError("max_coalitions", "max_coalitions must be at least 1")
        if not self.coalitions and self.effective_k() < 1:
            # Without this guard a base config of k=0 expands to an empty grid
            # and the audit would report "resilient" (and exit 0) vacuously.
            raise SpecError(
                "k",
                f"the audit grid is empty: the base config has k={self.base.config.k} "
                "and no explicit coalitions; set 'k' or 'coalitions'",
            )

    # -- derived defaults ---------------------------------------------------------
    def executor_count(self) -> int:
        """Providers that execute the protocol (coalition members come from these)."""
        return self.base.executors if self.base.executors is not None else self.base.providers

    def effective_k(self) -> int:
        """The audited coalition bound: explicit ``k`` or the base config's."""
        if self.k is not None:
            return self.k
        return min(self.base.config.k, max(1, self.executor_count() - 1))

    def effective_adversaries(self) -> Tuple[AdversarySpec, ...]:
        if self.adversaries:
            return self.adversaries
        return tuple(AdversarySpec(kind, dict(params)) for kind, params in DEFAULT_ADVERSARIES)

    def effective_seeds(self) -> Tuple[int, ...]:
        return self.seeds if self.seeds else (self.base.seed,)

    def coalition_selectors(self) -> Tuple[CoalitionSelector, ...]:
        """The audited coalitions: explicit selectors, or all subsets of size 1..k.

        Generated coalitions are executor *indices* (resolved against the real
        provider ids at run time, so they work with generated topologies too),
        enumerated sizes-first in lexicographic index order and capped by
        ``max_coalitions``.
        """
        if self.coalitions:
            return self.coalitions
        executors = self.executor_count()
        generated: List[CoalitionSelector] = []
        for size in range(1, self.effective_k() + 1):
            for combo in itertools.combinations(range(executors), size):
                generated.append(tuple(combo))
                if self.max_coalitions is not None and len(generated) >= self.max_coalitions:
                    return tuple(generated)
        return tuple(generated)

    def cells(self) -> List[Cell]:
        """The ordered audit grid: schedules (outer) x coalitions x adversaries."""
        return [
            (si, ci, ai)
            for si in range(len(self.schedules))
            for ci in range(len(self.coalition_selectors()))
            for ai in range(len(self.effective_adversaries()))
        ]


def _coalition_selector(selectors: Any, path: str) -> CoalitionSelector:
    if isinstance(selectors, (str, int)):
        selectors = (selectors,)
    if not isinstance(selectors, (list, tuple)) or not selectors:
        raise SpecError(
            path, "a coalition must be a non-empty list of provider ids or executor indices"
        )
    members: List[Union[str, int]] = []
    for j, member in enumerate(selectors):
        if isinstance(member, bool) or not isinstance(member, (str, int)):
            raise SpecError(
                f"{path}[{j}]",
                f"coalition members are provider-id strings or executor indices, "
                f"got {type(member).__name__}",
            )
        if isinstance(member, int) and member < 0:
            raise SpecError(f"{path}[{j}]", "executor indices must be non-negative")
        members.append(member)
    if len(set(members)) != len(members):
        raise SpecError(path, "coalition members must be distinct")
    return tuple(members)


# ---------------------------------------------------------------------- parsing --
_RESILIENCE_KEYS = {
    "name",
    "base",
    "k",
    "coalitions",
    "max_coalitions",
    "adversaries",
    "schedules",
    "seeds",
}


def resilience_from_dict(data: Mapping[str, Any]) -> ResilienceSpec:
    """Parse a resilience spec from a plain (JSON/TOML-shaped) mapping.

    Raises :class:`SpecError` with a dotted path to the offending key on any
    unknown key, wrong type, or invalid value.
    """
    if not isinstance(data, Mapping):
        raise SpecError("", f"expected a table at the top level, got {type(data).__name__}")
    unknown = set(data) - _RESILIENCE_KEYS
    if unknown:
        raise SpecError(
            sorted(unknown)[0],
            f"unknown resilience key; expected one of {', '.join(sorted(_RESILIENCE_KEYS))}",
        )
    kwargs: Dict[str, Any] = {}
    if "name" in data:
        name = data["name"]
        if not isinstance(name, str):
            raise SpecError("name", f"expected a string, got {type(name).__name__}")
        kwargs["name"] = name
    if "base" in data:
        base = data["base"]
        if not isinstance(base, Mapping):
            raise SpecError("base", f"expected a table, got {type(base).__name__}")
        try:
            kwargs["base"] = spec_from_dict(base)
        except SpecError as exc:
            raise SpecError(f"base.{exc.path}" if exc.path else "base", exc.message) from exc
    for key in ("k", "max_coalitions"):
        if key in data and data[key] is not None:
            value = data[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(key, f"expected an integer, got {type(value).__name__}")
            kwargs[key] = value
    if "coalitions" in data:
        entries = data["coalitions"]
        if not isinstance(entries, (list, tuple)):
            raise SpecError("coalitions", f"expected a list, got {type(entries).__name__}")
        kwargs["coalitions"] = tuple(
            _coalition_selector(entry, f"coalitions[{i}]") for i, entry in enumerate(entries)
        )
    if "adversaries" in data:
        entries = data["adversaries"]
        if not isinstance(entries, (list, tuple)):
            raise SpecError("adversaries", f"expected a list, got {type(entries).__name__}")
        kwargs["adversaries"] = tuple(
            AdversarySpec.from_value(entry, f"adversaries[{i}]")
            for i, entry in enumerate(entries)
        )
    if "schedules" in data:
        entries = data["schedules"]
        if not isinstance(entries, (list, tuple)):
            raise SpecError("schedules", f"expected a list, got {type(entries).__name__}")
        kwargs["schedules"] = tuple(
            ComponentSpec.from_value(entry, f"schedules[{i}]")
            for i, entry in enumerate(entries)
        )
    if "seeds" in data:
        entries = data["seeds"]
        if not isinstance(entries, (list, tuple)) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in entries
        ):
            raise SpecError("seeds", "expected a list of integers")
        kwargs["seeds"] = tuple(entries)
    return ResilienceSpec(**kwargs)


def resilience_to_dict(spec: ResilienceSpec) -> Dict[str, Any]:
    """Serialize a resilience spec to a plain mapping (no ``None``, TOML-safe)."""
    data: Dict[str, Any] = {"name": spec.name, "base": spec_to_dict(spec.base)}
    if spec.k is not None:
        data["k"] = spec.k
    if spec.coalitions:
        data["coalitions"] = [list(selectors) for selectors in spec.coalitions]
    if spec.max_coalitions is not None:
        data["max_coalitions"] = spec.max_coalitions
    if spec.adversaries:
        data["adversaries"] = [adversary.to_value() for adversary in spec.adversaries]
    data["schedules"] = [schedule.to_value() for schedule in spec.schedules]
    if spec.seeds:
        data["seeds"] = list(spec.seeds)
    return data


def resilience_with_overrides(
    spec: ResilienceSpec, overrides: Mapping[str, Any]
) -> ResilienceSpec:
    """A copy of ``spec`` with dotted-path overrides applied (re-validated).

    Shares the override grammar of the scenario layer: ``base.users=30`` digs
    into the base scenario, ``k=2`` / ``seeds=[0,1]`` replace audit fields.
    """
    from repro.scenarios.spec import apply_overrides

    if not overrides:
        return spec
    return resilience_from_dict(apply_overrides(resilience_to_dict(spec), overrides))


def resilience_fingerprint(spec: ResilienceSpec) -> str:
    """A stable digest of the audit's full canonical spec (for journal manifests)."""
    payload = json.dumps(resilience_to_dict(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- records --
@dataclass(frozen=True)
class ResilienceRecord:
    """The uniform result of one audit cell: one coalition deviation vs honest.

    All fields are JSON scalars or string-keyed mappings of scalars; the
    :meth:`to_dict` / :meth:`from_dict` round trip is lossless (``json``
    round-trips floats exactly).  Every field except the two ``*_elapsed``
    readings is deterministic in ``(spec, schedule, seed)``; with
    ``measure_compute=false`` the virtual clocks make those deterministic too.
    """

    name: str
    mechanism: str
    schedule: str
    adversary: str
    label: str
    coalition: Tuple[str, ...]
    users: int
    providers: int
    executors: int
    k: int
    audit_k: int
    instance: int
    seed: int
    honest_aborted: bool
    deviating_aborted: bool
    altered_result: bool
    profitable: bool
    max_gain: float
    member_gains: Mapping[str, float]
    honest_messages: int
    deviating_messages: int
    honest_elapsed: float
    deviating_elapsed: float

    def __post_init__(self) -> None:
        # Canonical member order, so journal bytes and equality are stable
        # however the caller assembled the coalition.
        object.__setattr__(self, "coalition", tuple(sorted(self.coalition)))
        object.__setattr__(
            self, "member_gains", {m: self.member_gains[m] for m in sorted(self.member_gains)}
        )

    @property
    def coalition_size(self) -> int:
        return len(self.coalition)

    @property
    def resilient(self) -> bool:
        """The cell's verdict: the deviation neither profited nor steered the result."""
        return not self.profitable and not self.altered_result

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mechanism": self.mechanism,
            "schedule": self.schedule,
            "adversary": self.adversary,
            "label": self.label,
            "coalition": list(self.coalition),
            "users": self.users,
            "providers": self.providers,
            "executors": self.executors,
            "k": self.k,
            "audit_k": self.audit_k,
            "instance": self.instance,
            "seed": self.seed,
            "honest_aborted": self.honest_aborted,
            "deviating_aborted": self.deviating_aborted,
            "altered_result": self.altered_result,
            "profitable": self.profitable,
            "max_gain": self.max_gain,
            "member_gains": dict(self.member_gains),
            "honest_messages": self.honest_messages,
            "deviating_messages": self.deviating_messages,
            "honest_elapsed": self.honest_elapsed,
            "deviating_elapsed": self.deviating_elapsed,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ResilienceRecord":
        return ResilienceRecord(
            name=data["name"],
            mechanism=data["mechanism"],
            schedule=data["schedule"],
            adversary=data["adversary"],
            label=data["label"],
            coalition=tuple(data["coalition"]),
            users=data["users"],
            providers=data["providers"],
            executors=data["executors"],
            k=data["k"],
            audit_k=data["audit_k"],
            instance=data["instance"],
            seed=data["seed"],
            honest_aborted=data["honest_aborted"],
            deviating_aborted=data["deviating_aborted"],
            altered_result=data["altered_result"],
            profitable=data["profitable"],
            max_gain=data["max_gain"],
            member_gains=dict(data["member_gains"]),
            honest_messages=data["honest_messages"],
            deviating_messages=data["deviating_messages"],
            honest_elapsed=data["honest_elapsed"],
            deviating_elapsed=data["deviating_elapsed"],
        )


@dataclass
class ResilienceResult:
    """All records of one audit, in grid order, plus the aggregate verdict."""

    name: str
    base: Dict[str, Any]
    records: List[ResilienceRecord] = field(default_factory=list)
    executed_cells: int = 0
    resumed_cells: int = 0

    @property
    def profitable_deviations(self) -> List[ResilienceRecord]:
        return [r for r in self.records if r.profitable]

    @property
    def influence_violations(self) -> List[ResilienceRecord]:
        return [r for r in self.records if r.altered_result]

    def is_resilient(self) -> bool:
        """True if no cell found a profitable or outcome-steering deviation."""
        return all(record.resilient for record in self.records)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "audit": self.name,
            "base": self.base,
            "resilient": self.is_resilient(),
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# --------------------------------------------------------------------- execution --
class AuditContext:
    """Per-executor state of one audit: components, baselines, coalitions.

    One instance backs one executor — the sequential loop or one parallel
    worker's chunk.  It memoises exactly what the honest-baseline guarantee
    promises: the mechanism once per audit, the workload / bids / latency model
    / provider ids once per seed, the auctioneer (and its scheduler instance)
    once per ``(schedule, seed)``, and the honest run once per
    ``(schedule, seed)``.  :meth:`close` releases engine resources (idempotent);
    always call it — or use the context as a context manager.
    """

    def __init__(self, spec: ResilienceSpec) -> None:
        self.spec = spec
        self.cells = spec.cells()
        self.adversaries = spec.effective_adversaries()
        self.selectors = spec.coalition_selectors()
        self._mechanism = None
        self._per_seed: Dict[int, Dict[str, Any]] = {}
        self._auctioneers: Dict[Tuple[int, int], DistributedAuctioneer] = {}
        self._honest: Dict[Tuple[int, int], SimulationReport] = {}

    # -- memoised components ------------------------------------------------------
    @property
    def mechanism(self):
        if self._mechanism is None:
            self._mechanism = build_mechanism(self.spec.base)
        return self._mechanism

    def _seed_state(self, instance: int) -> Dict[str, Any]:
        state = self._per_seed.get(instance)
        if state is not None:
            return state
        seed = self.spec.effective_seeds()[instance]
        scenario = spec_with_overrides(self.spec.base, {"seed": seed})
        topology = build_topology(scenario)
        if topology is not None:
            provider_ids = list(topology.gateways)
            if len(provider_ids) != scenario.providers:
                raise SpecError(
                    "base.topology",
                    f"topology produced {len(provider_ids)} gateways "
                    f"for providers={scenario.providers}",
                )
        else:
            provider_ids = default_provider_ids(scenario.providers)
        executor_ids = (
            provider_ids[: scenario.executors]
            if scenario.executors is not None
            else provider_ids
        )
        workload = build_workload(scenario)
        bids = workload.generate(
            scenario.users, scenario.providers, provider_ids=provider_ids, instance=0
        )
        state = {
            "scenario": scenario,
            "latency": build_latency_model(scenario, topology),
            "executor_ids": executor_ids,
            "bids": bids,
            "coalitions": [
                self._resolve_coalition(selectors, executor_ids, index)
                for index, selectors in enumerate(self.selectors)
            ],
        }
        self._per_seed[instance] = state
        return state

    def _resolve_coalition(
        self, selectors: CoalitionSelector, executor_ids: Sequence[str], index: int
    ) -> Tuple[str, ...]:
        members: List[str] = []
        known = set(executor_ids)
        for j, member in enumerate(selectors):
            path = f"coalitions[{index}][{j}]"
            if isinstance(member, int):
                if member >= len(executor_ids):
                    raise SpecError(
                        path,
                        f"executor index {member} out of range for "
                        f"{len(executor_ids)} executors",
                    )
                member = executor_ids[member]
            elif member not in known:
                raise SpecError(
                    path,
                    f"unknown provider id {member!r}; executing providers: "
                    f"{', '.join(executor_ids)}",
                )
            if member in members:
                raise SpecError(path, f"provider {member!r} selected twice in one coalition")
            members.append(member)
        if len(members) >= len(executor_ids):
            raise SpecError(
                f"coalitions[{index}]",
                "a coalition must leave at least one honest executor",
            )
        return tuple(members)

    def auctioneer(self, schedule_index: int, instance: int) -> DistributedAuctioneer:
        key = (schedule_index, instance)
        auctioneer = self._auctioneers.get(key)
        if auctioneer is None:
            state = self._seed_state(instance)
            scenario: ScenarioSpec = state["scenario"]
            scheduler = SCHEDULERS.create(
                self.spec.schedules[schedule_index], f"schedules[{schedule_index}]"
            )
            auctioneer = DistributedAuctioneer(
                self.mechanism,
                providers=state["executor_ids"],
                config=scenario.config.to_config(),
                latency_model=state["latency"],
                scheduler=scheduler,
                seed=scenario.seed,
                measure_compute=scenario.measure_compute,
            )
            self._auctioneers[key] = auctioneer
        return auctioneer

    def honest(self, schedule_index: int, instance: int) -> SimulationReport:
        """The honest baseline — solved once per ``(schedule, seed)`` group."""
        key = (schedule_index, instance)
        report = self._honest.get(key)
        if report is None:
            state = self._seed_state(instance)
            report = self.auctioneer(schedule_index, instance).run_from_bids(state["bids"])
            self._honest[key] = report
        return report

    # -- cells ---------------------------------------------------------------------
    def run_cell(self, point: int, instance: int) -> ResilienceRecord:
        """Run one ``(schedule x coalition x adversary) x seed`` cell."""
        schedule_index, coalition_index, adversary_index = self.cells[point]
        state = self._seed_state(instance)
        scenario: ScenarioSpec = state["scenario"]
        bids = state["bids"]
        members: Tuple[str, ...] = state["coalitions"][coalition_index]
        adversary = self.adversaries[adversary_index]
        deviant_factory = ADVERSARIES.create(
            adversary.component(), f"adversaries[{adversary_index}]"
        )
        auctioneer = self.auctioneer(schedule_index, instance)
        honest = self.honest(schedule_index, instance)

        coalition = Coalition.of(members, deviant_factory)
        deviating = auctioneer.run(
            auctioneer.consistent_inputs(bids),
            expected_users=[u.user_id for u in bids.users],
            node_factory=coalition.factory(),
        )

        gains: Dict[str, float] = {}
        for member in members:
            honest_utility = outcome_provider_utility(bids, honest.outcome, member)
            deviating_utility = outcome_provider_utility(bids, deviating.outcome, member)
            gains[member] = deviating_utility - honest_utility
        max_gain = max(gains.values())
        altered = _altered_result(honest, deviating)

        return ResilienceRecord(
            name=self.spec.name,
            mechanism=self.mechanism.name,
            schedule=self.spec.schedules[schedule_index].kind,
            adversary=adversary.kind,
            label=adversary.display_label,
            coalition=tuple(sorted(members)),
            users=scenario.users,
            providers=scenario.providers,
            executors=len(state["executor_ids"]),
            k=scenario.config.k,
            audit_k=self.spec.effective_k(),
            instance=instance,
            seed=scenario.seed,
            honest_aborted=honest.outcome.aborted,
            deviating_aborted=deviating.outcome.aborted,
            altered_result=altered,
            profitable=any(gain > PROFIT_TOLERANCE for gain in gains.values()),
            max_gain=max_gain,
            member_gains=gains,
            honest_messages=honest.outcome.messages,
            deviating_messages=deviating.outcome.messages,
            honest_elapsed=honest.outcome.elapsed_time,
            deviating_elapsed=deviating.outcome.elapsed_time,
        )

    # -- lifecycle ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources the context created (idempotent)."""
        mechanism, self._mechanism = self._mechanism, None
        if mechanism is not None:
            close = getattr(mechanism, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "AuditContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _altered_result(honest: SimulationReport, deviating: SimulationReport) -> bool:
    """Definition 2's influence check: a different *valid* outcome (not just ⊥)."""
    if deviating.outcome.aborted:
        return False
    if honest.outcome.aborted:
        return True
    return deviating.outcome.result != honest.outcome.result


def execute_cells(
    spec: ResilienceSpec, cells: Sequence[Tuple[int, int]]
) -> Iterator[Tuple[int, int, ResilienceRecord]]:
    """Run the given ``(point, instance)`` cells through one audit context.

    Shared by the sequential path and the parallel workers
    (:func:`repro.scenarios.resilience_parallel.execute_chunk`), so the two
    cannot drift apart on how components are resolved or baselines memoised.
    Cells are executed grouped by ``(schedule, seed)`` so each group's honest
    baseline is solved exactly once, whatever order the caller passed.
    """
    grid = spec.cells()
    ordered = sorted(cells, key=lambda cell: (grid[cell[0]][0], cell[1], cell[0]))
    with AuditContext(spec) as context:
        for point, instance in ordered:
            yield point, instance, context.run_cell(point, instance)


def run_resilience(
    spec: ResilienceSpec,
    *,
    workers: Union[None, int, str] = None,
    backend: Optional[str] = None,
    store=None,
    store_format: Optional[str] = None,
    resume: bool = False,
) -> ResilienceResult:
    """Run the full audit grid and collect the records in grid order.

    Args:
        spec: the audit specification.
        workers: run cells in a pool of worker processes.  ``"auto"`` sizes
            the pool from the CPUs this process may actually use; an explicit
            count larger than that degrades to the available count with a
            stderr warning; ``None``/``1`` (and any resolution landing on one
            CPU) is the sequential, in-process path — see
            :func:`~repro.scenarios.dispatch.resolve_workers`.  Chunks are
            grouped by ``(schedule, seed)`` so the honest-baseline memoisation
            survives chunking; verdicts are bit-identical to the sequential
            path on all deterministic fields, in the same grid order.
        backend: dispatch parallel chunks through a named
            :data:`~repro.scenarios.dispatch.EXECUTOR_BACKENDS` entry instead
            of the default local ``"process"`` pool.
        store: a results journal — a path (``str``/``PathLike``) or a
            :class:`~repro.scenarios.store.ResultsStore` — appended to as cells
            complete.  The journal doubles as the audit artifact and as the
            checkpoint for ``resume``.
        store_format: with a path ``store``, which
            :data:`~repro.scenarios.store.STORE_BACKENDS` file format a fresh
            journal is written in (``"jsonl"``/``"columnar"``; default jsonl).
            Existing journals are sniffed — a format contradicting what is on
            disk is a :class:`SpecError` naming both formats.
        resume: with ``store``, skip cells the journal already holds (its
            manifest must match this audit) and run only the missing ones.
    """
    from repro.scenarios.dispatch import resolve_workers

    plan = resolve_workers(workers, backend=backend)
    # Resolve every registry reference up front (and discard the results): a
    # typo'd adversary kind or bad parameter fails with its path-precise
    # SpecError here, before any journal is opened or simulation runs.
    for index, adversary in enumerate(spec.effective_adversaries()):
        ADVERSARIES.create(adversary.component(), f"adversaries[{index}]")
    for index, schedule in enumerate(spec.schedules):
        SCHEDULERS.create(schedule, f"schedules[{index}]")
    cells = spec.cells()
    seeds = spec.effective_seeds()

    journal = _as_store(store, store_format)
    completed: Dict[Tuple[int, int], ResilienceRecord] = {}
    if journal is not None:
        completed = journal.begin(
            spec,
            total_rounds=len(cells) * len(seeds),
            resume=resume,
            fingerprint=resilience_fingerprint(spec),
        )

    pending = [
        (point, instance)
        for point in range(len(cells))
        for instance in range(len(seeds))
        if (point, instance) not in completed
    ]
    fresh: Dict[Tuple[int, int], ResilienceRecord] = {}
    try:
        if plan.parallel and pending:
            from repro.scenarios.resilience_parallel import execute_parallel

            stream = execute_parallel(spec, pending, plan.workers, plan.backend)
        else:
            stream = execute_cells(spec, pending)
        try:
            for point, instance, record in stream:
                fresh[(point, instance)] = record
                if journal is not None:
                    journal.append(point, instance, record)
        finally:
            stream.close()
    finally:
        if journal is not None:
            journal.close()

    result = ResilienceResult(
        name=spec.name,
        base=spec_to_dict(spec.base),
        executed_cells=len(fresh),
        resumed_cells=len(completed),
    )
    for point in range(len(cells)):
        for instance in range(len(seeds)):
            record = fresh.get((point, instance))
            if record is None:
                record = completed[(point, instance)]
            result.records.append(record)
    # Observability hook (see repro.obs): audit-level counters; the per-round
    # spans and network counters come from the layers below when cells run
    # in this process.
    obs = current_observation()
    if obs is not None and obs.metrics is not None:
        obs.metrics.counter("resilience.cells_executed").inc(len(fresh))
        obs.metrics.counter("resilience.cells_reused").inc(len(completed))
        obs.metrics.counter("resilience.profitable_deviations").inc(
            len(result.profitable_deviations)
        )
    return result


def _as_store(store, store_format=None):
    if store is None:
        return None
    from repro.scenarios.store import ResultsStore

    if isinstance(store, ResultsStore):
        store.record_type = ResilienceRecord
        if store_format is not None:
            store.format = store_format
        return store
    return ResultsStore(store, record_type=ResilienceRecord, format=store_format)
