"""Empirical k-resilience checks for the distributed simulation.

Definition 2 of the paper: a protocol is a k-resilient (ex post) equilibrium if no
coalition of at most k providers can increase the expected utility of any of its
members by deviating, for every fair schedule.  The reproduction cannot quantify over
*all* deviations, but it can sweep a representative library (input forgery,
equivocation, omission, crash, output tampering — see :mod:`repro.adversary`) under
several schedules and verify the two facts the paper's proof rests on:

1. **no profitable deviation** — no coalition member's utility under the deviation
   exceeds its utility under the honest run;
2. **no influence beyond ⊥** — the outcome observed when the coalition deviates is
   either the honest outcome or ⊥ (a coalition cannot steer the correct providers to
   a *different* valid result).

:func:`check_k_resilience` is the **supported low-level API**: it accepts arbitrary
hand-wired coalitions and deviation callables (custom ``forge`` functions, bespoke
tampering rules) against one configured auctioneer.  The declarative layer on top —
:mod:`repro.scenarios.resilience`, ``repro-auction resilience`` — expands a
serializable audit grid (coalitions x deviations x schedules x seeds), memoises the
honest baseline per ``(schedule, seed)`` and parallelises across workers; its
verdicts are pinned to this function, float for float, by
``tests/gametheory/test_resilience_parallel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.coalition import Coalition
from repro.auctions.base import BidVector
from repro.common import is_abort
from repro.core.framework import DistributedAuctioneer, SimulationReport
from repro.core.outcome import Outcome
from repro.gametheory.utility import outcome_provider_utility

__all__ = ["DeviationOutcome", "ResilienceReport", "check_k_resilience"]


@dataclass
class DeviationOutcome:
    """Result of running one coalition deviation against the honest baseline."""

    coalition: Coalition
    label: str
    honest_outcome: Outcome
    deviating_outcome: Outcome
    member_gains: Dict[str, float] = field(default_factory=dict)

    @property
    def profitable(self) -> bool:
        return any(gain > 1e-9 for gain in self.member_gains.values())

    @property
    def altered_result(self) -> bool:
        """True if the deviation produced a *different valid* outcome (not just ⊥)."""
        if self.deviating_outcome.aborted:
            return False
        if self.honest_outcome.aborted:
            return True
        return self.deviating_outcome.result != self.honest_outcome.result


@dataclass
class ResilienceReport:
    """Aggregate of a deviation sweep."""

    outcomes: List[DeviationOutcome] = field(default_factory=list)

    @property
    def profitable_deviations(self) -> List[DeviationOutcome]:
        return [o for o in self.outcomes if o.profitable]

    @property
    def influence_violations(self) -> List[DeviationOutcome]:
        return [o for o in self.outcomes if o.altered_result]

    def is_resilient(self) -> bool:
        """True if no deviation was profitable and none altered the valid outcome."""
        return not self.profitable_deviations and not self.influence_violations


def check_k_resilience(
    auctioneer: DistributedAuctioneer,
    bids: BidVector,
    coalitions: Sequence[tuple],
    valuation: Optional[BidVector] = None,
) -> ResilienceReport:
    """Run a coalition deviation sweep and compare against the honest baseline.

    Args:
        auctioneer: configured distributed auctioneer (mechanism, providers, config).
        bids: the bid vector submitted by the (honest) bidders; provider asks in it
            are taken as the providers' true valuations unless overridden.
        coalitions: a sequence of ``(label, Coalition)`` pairs to evaluate.
        valuation: true valuations used to compute utilities (defaults to ``bids``).
    """
    valuation = valuation if valuation is not None else bids
    honest_report: SimulationReport = auctioneer.run_from_bids(bids)
    report = ResilienceReport()
    inputs = auctioneer.consistent_inputs(bids)
    expected_users = [u.user_id for u in bids.users]

    for label, coalition in coalitions:
        deviating: SimulationReport = auctioneer.run(
            inputs,
            expected_users=expected_users,
            node_factory=coalition.factory(),
        )
        gains: Dict[str, float] = {}
        for member in coalition.members:
            honest_utility = outcome_provider_utility(
                valuation, honest_report.outcome, member
            )
            deviating_utility = outcome_provider_utility(
                valuation, deviating.outcome, member
            )
            gains[member] = deviating_utility - honest_utility
        report.outcomes.append(
            DeviationOutcome(
                coalition=coalition,
                label=label,
                honest_outcome=honest_report.outcome,
                deviating_outcome=deviating.outcome,
                member_gains=gains,
            )
        )
    return report
