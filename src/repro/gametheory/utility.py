"""Utilities of users and providers for simulation outcomes.

Section 3.3 of the paper: if the outcome is ⊥ the utility of every participant is 0;
otherwise a user's utility is the value of its allocation (under its *true* valuation)
minus its payment, and a provider's utility is the payment it receives minus the cost
of the resources it supplies.
"""

from __future__ import annotations

from typing import Union

from repro.auctions.base import AuctionResult, BidVector
from repro.auctions.welfare import provider_utility, user_utility
from repro.common import AbortType, is_abort
from repro.core.outcome import Outcome

__all__ = ["outcome_user_utility", "outcome_provider_utility"]

OutcomeLike = Union[Outcome, AuctionResult, AbortType, None]


def _result_of(outcome: OutcomeLike):
    if outcome is None or is_abort(outcome):
        return None
    if isinstance(outcome, Outcome):
        return None if outcome.aborted else outcome.auction_result
    if isinstance(outcome, AuctionResult):
        return outcome
    return None


def outcome_user_utility(valuation: BidVector, outcome: OutcomeLike, user_id: str) -> float:
    """Utility of a user for an outcome (0 if the outcome is ⊥ or undefined)."""
    result = _result_of(outcome)
    if result is None:
        return 0.0
    return user_utility(valuation, result, user_id)


def outcome_provider_utility(
    valuation: BidVector, outcome: OutcomeLike, provider_id: str
) -> float:
    """Utility of a provider for an outcome (0 if the outcome is ⊥ or undefined)."""
    result = _result_of(outcome)
    if result is None:
        return 0.0
    return provider_utility(valuation, result, provider_id)
