"""Game-theoretic analysis harness.

The paper's guarantees are stated game-theoretically: truthfulness of the mechanisms,
budget balance, and k-resilience of the distributed simulation.  This package provides
the *empirical* counterparts used by the test suite and the experiment scripts:

* :mod:`repro.gametheory.utility` — utilities of users and providers for a given
  outcome (0 when the outcome is ⊥, as in Section 3.3).
* :mod:`repro.gametheory.truthfulness` — sampled unilateral-misreport checks for any
  mechanism.
* :mod:`repro.gametheory.resilience` — coalition deviation sweeps over the distributed
  simulation, checking that no coalition member profits and that correct providers'
  outcome can only be pushed towards ⊥.
"""

from repro.gametheory.resilience import DeviationOutcome, ResilienceReport, check_k_resilience
from repro.gametheory.truthfulness import TruthfulnessReport, check_truthfulness
from repro.gametheory.utility import outcome_provider_utility, outcome_user_utility

__all__ = [
    "DeviationOutcome",
    "ResilienceReport",
    "TruthfulnessReport",
    "check_k_resilience",
    "check_truthfulness",
    "outcome_provider_utility",
    "outcome_user_utility",
]
