"""Empirical truthfulness checks for auction mechanisms.

A mechanism is truthful if no bidder can increase its utility by misreporting its
valuation, whatever the other bids.  Proving this is the mechanism designer's job; the
reproduction checks it *empirically*: for sampled users and sampled misreports (scaled
unit values), compare the utility obtained by bidding truthfully against the utility
obtained by misreporting, holding everything else fixed.

The check reports violations together with their magnitude, so tests can distinguish
"not truthful" (the greedy pay-your-bid baseline, which fails by a wide margin) from
numerical noise in approximately-truthful mechanisms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, BidVector
from repro.auctions.welfare import provider_utility, user_utility
from repro.common import stable_hash

__all__ = ["TruthfulnessViolation", "TruthfulnessReport", "check_truthfulness"]


@dataclass(frozen=True)
class TruthfulnessViolation:
    """One profitable misreport found by the sampler."""

    agent_id: str
    kind: str  # "user" or "provider"
    factor: float
    truthful_utility: float
    deviating_utility: float

    @property
    def gain(self) -> float:
        return self.deviating_utility - self.truthful_utility


@dataclass
class TruthfulnessReport:
    """Result of a truthfulness sweep over one instance."""

    checked: int = 0
    violations: List[TruthfulnessViolation] = field(default_factory=list)

    @property
    def max_gain(self) -> float:
        return max((v.gain for v in self.violations), default=0.0)

    def is_truthful(self, tolerance: float = 1e-6) -> bool:
        """True if no sampled misreport gains more than ``tolerance``."""
        return self.max_gain <= tolerance


def check_truthfulness(
    mechanism: AllocationAlgorithm,
    true_bids: BidVector,
    factors: Sequence[float] = (0.0, 0.5, 0.8, 1.2, 1.5, 2.0),
    users: Optional[Sequence[str]] = None,
    check_providers: bool = False,
    seed: int = 0,
    tolerance: float = 1e-6,
) -> TruthfulnessReport:
    """Sample unilateral misreports and measure the utility gain of each.

    Args:
        mechanism: the mechanism under test (run with a deterministic per-call seed,
            the same for the truthful and deviating runs, so randomised mechanisms
            are compared on the same coin flips — truthfulness in expectation is
            approximated by truthfulness per coin).
        true_bids: the true valuations.
        factors: multiplicative misreports applied to the agent's unit value.
        users: restrict the check to these user ids (default: all).
        check_providers: also check provider cost misreports (double auctions).
        seed: seed for the mechanism's randomness.
        tolerance: gains below this are not recorded as violations.
    """
    report = TruthfulnessReport()
    rng_seed = stable_hash(seed, "truthfulness")

    def run(bids: BidVector):
        return mechanism.run(bids, random.Random(rng_seed))

    truthful_result = run(true_bids)

    user_ids = list(users) if users is not None else true_bids.user_ids
    for user_id in user_ids:
        baseline = user_utility(true_bids, truthful_result, user_id)
        true_bid = true_bids.user(user_id)
        for factor in factors:
            if abs(factor - 1.0) < 1e-12:
                continue
            report.checked += 1
            deviating = true_bids.replace_user(
                true_bid.with_unit_value(true_bid.unit_value * factor)
            )
            deviating_result = run(deviating)
            utility = user_utility(true_bids, deviating_result, user_id)
            if utility > baseline + tolerance:
                report.violations.append(
                    TruthfulnessViolation(user_id, "user", factor, baseline, utility)
                )

    if check_providers:
        for ask in true_bids.providers:
            baseline = provider_utility(true_bids, truthful_result, ask.provider_id)
            for factor in factors:
                if abs(factor - 1.0) < 1e-12:
                    continue
                report.checked += 1
                deviating = true_bids.replace_provider(
                    ask.with_unit_cost(ask.unit_cost * factor)
                )
                deviating_result = run(deviating)
                utility = provider_utility(true_bids, deviating_result, ask.provider_id)
                if utility > baseline + tolerance:
                    report.violations.append(
                        TruthfulnessViolation(
                            ask.provider_id, "provider", factor, baseline, utility
                        )
                    )
    return report
