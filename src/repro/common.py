"""Shared primitives used across layers.

The special value ⊥ ("abort") appears at every level of the framework: a building
block outputs ⊥ when it detects an inconsistency, and the outcome of the whole
simulation is ⊥ if any provider outputs ⊥ (Definition 1 of the paper).  Defining the
sentinel here — below every other package — keeps the dependency graph acyclic.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any

__all__ = ["ABORT", "AbortType", "available_cpus", "is_abort", "stable_hash"]


def available_cpus() -> int:
    """The number of CPUs this process may actually run on (never 0).

    ``os.cpu_count()`` reports the machine's logical cores, which overstates
    what a containerized or affinity-restricted process can use — a CI runner
    pinned to one core of a 64-core host would size pools 64 wide.  Prefer the
    scheduling affinity mask where the platform exposes it; every pool-sizing
    decision in this package (pivot executors, sweep/audit worker resolution)
    goes through this helper.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def stable_hash(*parts: Any) -> int:
    """Deterministic 63-bit hash of a tuple of simple values.

    Python's built-in ``hash`` of strings is randomised per process
    (``PYTHONHASHSEED``), which would make seed derivation irreproducible across
    runs.  All seed derivation in this package therefore goes through this helper,
    which hashes the ``repr`` of the parts with SHA-256.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class AbortType:
    """Singleton sentinel representing the special value ⊥ (abort).

    The sentinel compares equal only to itself, hashes consistently, and is falsy so
    that ``if result:`` reads naturally in protocol code.
    """

    _instance: "AbortType | None" = None

    def __new__(cls) -> "AbortType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABORT"

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AbortType)

    def __hash__(self) -> int:
        return hash("repro.common.ABORT")

    def __reduce__(self):
        # Pickling round-trips to the same singleton.
        return (AbortType, ())


ABORT = AbortType()


def is_abort(value: Any) -> bool:
    """True if ``value`` is the ⊥ sentinel."""
    return isinstance(value, AbortType)
