"""Command-line interface.

Three sub-commands cover the common workflows::

    repro-auction run   --mechanism double --users 100 --providers 8 --k 1
    repro-auction run   --mechanism standard --engine vectorized --users 50
    repro-auction fig4  --users 100 200 400 --k 1 2 3
    repro-auction fig5  --users 25 50 75 --parallelism 1 2 4 --engine vectorized
    repro-auction batch --mechanism standard --users 50 --rounds 20

``run`` executes one distributed auction round and prints the outcome; ``fig4`` and
``fig5`` regenerate the corresponding evaluation figures of the paper as text tables;
``batch`` runs many rounds of one scenario through the amortised
:class:`~repro.runtime.batch.BatchAuctionRunner`.  ``--engine`` switches standard
auctions between the reference and the vectorized execution engine (bit-identical
results — see DESIGN.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.engine import DEFAULT_ENGINE, ENGINES, resolve_engine
from repro.auctions.standard_auction import StandardAuction
from repro.bench.harness import Figure4Experiment, Figure5Experiment
from repro.bench.reporting import format_points, format_series
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer
from repro.runtime.batch import BatchAuctionRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-auction",
        description="Distributed auctioneer for resource allocation (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one distributed auction round")
    run.add_argument("--mechanism", choices=["double", "standard"], default="double")
    run.add_argument("--users", type=int, default=50)
    run.add_argument("--providers", type=int, default=8)
    run.add_argument("--k", type=int, default=1, help="tolerated coalition size")
    run.add_argument("--parallel", action="store_true", help="use the parallel allocator")
    run.add_argument("--epsilon", type=float, default=0.25, help="standard-auction accuracy knob")
    run.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=DEFAULT_ENGINE,
        help="execution engine for the standard auction (bit-identical results)",
    )
    run.add_argument("--seed", type=int, default=0)

    fig4 = sub.add_parser("fig4", help="regenerate Figure 4 (double auction running time)")
    fig4.add_argument("--users", type=int, nargs="+", default=[100, 200, 400, 600, 800, 1000])
    fig4.add_argument("--k", type=int, nargs="+", default=[1, 2, 3])
    fig4.add_argument("--providers", type=int, default=8)
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--series", action="store_true", help="print per-series summary")

    fig5 = sub.add_parser("fig5", help="regenerate Figure 5 (standard auction running time)")
    fig5.add_argument("--users", type=int, nargs="+", default=[25, 50, 75, 100, 125])
    fig5.add_argument("--parallelism", type=int, nargs="+", default=[1, 2, 4])
    fig5.add_argument("--providers", type=int, default=8)
    fig5.add_argument("--epsilon", type=float, default=0.25)
    fig5.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=DEFAULT_ENGINE,
        help="execution engine for the standard auction (bit-identical results)",
    )
    fig5.add_argument("--seed", type=int, default=0)
    fig5.add_argument("--series", action="store_true", help="print per-series summary")

    batch = sub.add_parser(
        "batch", help="run many rounds of one scenario with amortised setup"
    )
    batch.add_argument("--mechanism", choices=["double", "standard"], default="standard")
    batch.add_argument("--users", type=int, default=50)
    batch.add_argument("--providers", type=int, default=8)
    batch.add_argument("--rounds", type=int, default=10, help="number of workload instances")
    batch.add_argument("--k", type=int, default=1, help="tolerated coalition size")
    batch.add_argument("--parallel", action="store_true", help="use the parallel allocator")
    batch.add_argument("--epsilon", type=float, default=0.25)
    batch.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=DEFAULT_ENGINE,
        help="execution engine for the standard auction (bit-identical results)",
    )
    batch.add_argument("--seed", type=int, default=0)

    return parser


def _make_mechanism_and_workload(args: argparse.Namespace):
    if args.mechanism == "double":
        return DoubleAuction(), DoubleAuctionWorkload(seed=args.seed)
    mechanism = resolve_engine(StandardAuction(epsilon=args.epsilon), args.engine)
    return mechanism, StandardAuctionWorkload(seed=args.seed)


def _command_run(args: argparse.Namespace) -> int:
    mechanism, workload = _make_mechanism_and_workload(args)
    bids = workload.generate(args.users, args.providers)
    provider_ids = bids.provider_ids
    auctioneer = DistributedAuctioneer(
        mechanism,
        providers=provider_ids,
        config=FrameworkConfig(k=args.k, parallel=args.parallel),
        seed=args.seed,
        measure_compute=True,
    )
    report = auctioneer.run_from_bids(bids)
    print(f"mechanism       : {mechanism.name}")
    print(f"users/providers : {args.users}/{args.providers} (k={args.k}, parallel={args.parallel})")
    print(f"outcome         : {'ABORT' if report.aborted else 'agreed (x, p)'}")
    print(f"elapsed (model) : {report.outcome.elapsed_time:.4f} s")
    print(f"messages        : {report.outcome.messages}")
    print(f"bytes           : {report.outcome.bytes_transferred}")
    if not report.aborted:
        result = report.result
        print(f"winning users   : {len(result.allocation.winners())}")
        print(f"total paid      : {result.payments.total_paid:.4f}")
        print(f"total received  : {result.payments.total_received:.4f}")
    return 0


def _command_fig4(args: argparse.Namespace) -> int:
    experiment = Figure4Experiment(
        num_providers=args.providers,
        k_values=args.k,
        n_values=args.users,
        seed=args.seed,
    )
    points = experiment.run()
    print(format_series(points) if args.series else format_points(points))
    return 0


def _command_fig5(args: argparse.Namespace) -> int:
    experiment = Figure5Experiment(
        num_providers=args.providers,
        p_values=args.parallelism,
        n_values=args.users,
        epsilon=args.epsilon,
        engine=args.engine,
        seed=args.seed,
    )
    points = experiment.run()
    print(format_series(points) if args.series else format_points(points))
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    mechanism, workload = _make_mechanism_and_workload(args)
    # The mechanism is already engine-resolved by _make_mechanism_and_workload,
    # so the CLI owns it (and its pivot pool, if any) — release it when done.
    runner = BatchAuctionRunner(
        mechanism,
        workload,
        num_providers=args.providers,
        config=FrameworkConfig(k=args.k, parallel=args.parallel),
        seed=args.seed,
        measure_compute=True,
    )
    try:
        summary = runner.run_batch(args.users, range(args.rounds))
    finally:
        close = getattr(mechanism, "close", None)
        if close is not None:
            close()
    print(f"mechanism       : {runner.algorithm.name}")
    print(f"users/providers : {args.users}/{args.providers} (k={args.k}, parallel={args.parallel})")
    print(f"rounds          : {summary.total_rounds} ({summary.aborted_rounds} aborted)")
    print(f"total (model)   : {summary.total_elapsed_seconds:.4f} s")
    print(f"mean (model)    : {summary.mean_elapsed_seconds:.4f} s")
    return 0 if summary.aborted_rounds == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "fig4":
        return _command_fig4(args)
    if args.command == "fig5":
        return _command_fig5(args)
    if args.command == "batch":
        return _command_batch(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
