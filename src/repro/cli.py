"""Command-line interface, built on the declarative scenario API.

Eleven sub-commands cover the common workflows::

    repro-auction run   --mechanism double --users 100 --providers 8 --k 1
    repro-auction run   --spec scenario.toml --set users=200 --set config.k=2 --json
    repro-auction batch --mechanism standard --users 50 --rounds 20
    repro-auction sweep --spec sweep.json --json
    repro-auction sweep --spec sweep.json --workers 4 --output results.jsonl
    repro-auction sweep --spec sweep.json --workers 4 --output results.jsonl --resume
    repro-auction sweep --spec sweep.json --output results.rcol --store-format columnar
    repro-auction fig4  --users 100 200 400 --k 1 2 3
    repro-auction fig5  --users 25 50 75 --parallelism 1 2 4 --engine vectorized
    repro-auction resilience --spec resilience.json --workers 4 --output audit.jsonl
    repro-auction chaos --spec chaos.json --workers 4 --output chaos.jsonl
    repro-auction chaos --spec chaos.json --set recovery.max_retries=5 --json
    repro-auction results summarize results.rcol
    repro-auction results convert results.jsonl results.rcol
    repro-auction sweep --spec sweep.json --trace trace.jsonl --metrics metrics.json
    repro-auction trace trace.jsonl --format chrome > trace_chrome.json
    repro-auction metrics metrics.json
    repro-auction lint
    repro-auction lint src benchmarks --format json --select RPA001,RPA004

``run``, ``sweep``, ``resilience`` and ``chaos`` accept ``--trace FILE``
(journal sim-time spans to FILE as the run executes; ``.rcol`` picks the
columnar store format) and ``--metrics FILE`` (write the metrics-hub
snapshot as canonical JSON, with a one-line stderr summary) — the
observability plane of :mod:`repro.obs`.  ``trace`` exports a recorded
journal as Chrome-trace JSON (load it at https://ui.perfetto.dev) or an
indented text listing; ``metrics`` renders a snapshot back as a table.
Traces and metrics contain modelled time only, so they are byte-identical
across reruns and ``PYTHONHASHSEED`` values.

``results`` works on existing journals, whatever their format (the file is
sniffed, never declared): ``summarize`` streams a journal through the
constant-memory aggregation layer (:mod:`repro.scenarios.aggregate`) and
prints per-column count/mean/min/max/percentiles plus throughput totals
without ever materialising the record list; ``convert`` rewrites a journal
in the other :data:`~repro.scenarios.store.STORE_BACKENDS` format
(jsonl <-> columnar), preserving the manifest fingerprint so ``--resume``
continues a converted journal exactly where the original stopped.

``lint`` runs the determinism & contract linter (:mod:`repro.analysis`) over
the given paths (default ``src`` and ``benchmarks`` where they exist): the RPA
rule set that statically pins the repo's bit-identity guarantee — wall-clock/
RNG taint, unordered iteration, pool-unsafe exceptions and submissions, frozen
``*Spec`` dataclasses, literal registry kinds, benchmark pytestmarks.  Exit
status is part of the contract: 0 when clean, 1 when there are findings, 2
when the lint run itself failed (unknown ``--select`` code, missing path,
unparseable file).  Line-scoped ``# repro: noqa[RPAxxx]`` comments suppress
individual findings; suppressions are counted in the report.

``resilience`` audits the paper's headline claim (Definition 2, k-resilient
ex-post equilibrium): every coalition up to ``k`` runs every deviation of the
library under every schedule, against a memoised honest baseline; the exit
status is 0 when no deviation was profitable or outcome-altering.  It shares
the grid flags (``--workers``/``--output``/``--resume``) with ``sweep``.

``chaos`` audits the protocol under injected faults (:mod:`repro.net.faults`):
every fault model of the spec runs against every seed, and every cell checks
delivery conservation (``sent == delivered + dropped + lost``), termination,
bit-identical replay at the fixed seed and — for ``torn_append`` faults —
that a results journal torn mid-append repairs on resume.  Exit status is 0
only when every invariant held in every cell and nothing was quarantined.  It
shares the grid flags with ``sweep`` and adds ``--quarantine`` (survive
worker crashes: keep running, journal the poison cells, report them).

``run`` executes one auction round and prints the outcome; ``batch`` runs many
rounds of one scenario with amortised setup; ``sweep`` runs a grid of scenarios
from a spec file.  ``fig4`` and ``fig5`` regenerate the corresponding evaluation
figures of the paper — they are exactly ``sweep`` over the built-in Figure 4 /
Figure 5 sweep specs, kept as dedicated sub-commands for their historical flags.

``run``, ``batch`` and ``sweep`` accept ``--spec FILE`` (a JSON or TOML
scenario/sweep spec) and ``--set key=value`` (dotted-path overrides, e.g.
``--set config.k=2`` or ``--set mechanism.epsilon=0.5``); every sub-command
accepts ``--json`` (machine-readable output of the uniform RunRecord schema).
Flags like ``--users`` keep their historical spellings and are translated into
spec overrides, so flags and spec files compose: a non-default flag overrides
the spec file.  The grid commands (``sweep``/``fig4``/``fig5``) additionally
take ``--workers N`` (run grid points in an N-process pool, chunked to keep
the engine-state amortisation; records stay in grid order and are identical
to a sequential run on all deterministic fields), ``--output FILE`` (append
every record to a results journal as it completes), ``--store-format
jsonl|columnar`` (the file format a fresh journal is written in — jsonl is
the greppable interchange default, columnar the typed NumPy format built
for huge grids; existing journals are sniffed, and a contradicting
``--store-format`` is a spec error suggesting ``results convert``) and
``--resume`` (skip rounds the journal already holds — re-running an
interrupted sweep executes only the missing grid points).  One argparse-rooted caveat: next to ``--spec``, a flag
explicitly set to its default value (e.g. ``--users 50``) is indistinguishable
from an omitted flag and is ignored — use ``--set users=50`` to force a value
that happens to coincide with a flag default.  ``--workers auto`` sizes the
pool from the CPUs the process may actually use (affinity-aware) and falls
back to sequential execution on a single CPU; an explicit ``--workers N``
larger than the available CPUs degrades to the available count with a stderr
warning instead of oversubscribing.  ``fig4``/``fig5`` take no
``--spec`` (their grids *are* the shipped ``examples/specs/fig4.json`` /
``fig5.toml`` files; edit those and use ``sweep`` to vary them beyond the
historical flags).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, Optional, Sequence

from repro.auctions.engine import DEFAULT_ENGINE, ENGINES
from repro.bench.harness import Figure4Experiment, Figure5Experiment, record_to_point
from repro.bench.reporting import format_points, format_series
from repro.scenarios.chaos import ChaosResult, chaos_with_overrides, run_chaos
from repro.scenarios.io import load_any, load_chaos, load_resilience
from repro.scenarios.resilience import ResilienceResult, resilience_with_overrides, run_resilience
from repro.scenarios.simulation import Simulation
from repro.scenarios.spec import (
    ScenarioSpec,
    SpecError,
    SweepSpec,
    parse_assignments,
    spec_with_overrides,
)
from repro.scenarios.sweep import SweepResult, run_sweep

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-auction",
        description="Distributed auctioneer for resource allocation (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--spec", metavar="FILE", help="scenario spec file (.json or .toml)"
        )
        command.add_argument(
            "--set",
            dest="overrides",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="dotted-path spec override (e.g. --set config.k=2); repeatable",
        )
        command.add_argument(
            "--json", action="store_true", help="print machine-readable JSON records"
        )

    def add_grid_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers",
            type=_workers_argument,
            default=None,
            metavar="N|auto",
            help="run grid points in a worker-process pool: an explicit count "
            "(degraded to the available CPUs with a warning if larger), or "
            "'auto' to size from the CPUs this process may use (chunked by "
            "configuration so engine state stays amortised; results are "
            "identical to a sequential run on all deterministic fields, in "
            "the same order)",
        )
        command.add_argument(
            "--output",
            metavar="FILE",
            help="append every record to this results journal as it "
            "completes (per round sequentially, per worker chunk under "
            "--workers); the journal doubles as the sweep artifact and as "
            "the checkpoint --resume continues from",
        )
        command.add_argument(
            "--store-format",
            choices=_store_format_choices(),
            default=None,
            help="file format for a fresh --output journal: 'jsonl' (the "
            "greppable interchange default) or 'columnar' (typed NumPy "
            "chunks with streaming summaries, built for large grids); an "
            "existing journal's format is sniffed from the file, and a "
            "contradicting --store-format is an error suggesting "
            "'repro-auction results convert'",
        )
        command.add_argument(
            "--resume",
            action="store_true",
            help="skip grid rounds already journaled in --output FILE and run "
            "only the missing ones (the journal must belong to this sweep)",
        )

    def add_obs_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace",
            metavar="FILE",
            help="journal sim-time spans (rounds, deliveries, solves, faults) "
            "to this results-store file as the command runs; a .rcol path "
            "picks the columnar format, anything else jsonl — export with "
            "'repro-auction trace FILE'",
        )
        command.add_argument(
            "--metrics",
            dest="metrics_out",
            metavar="FILE",
            help="write the run's metrics snapshot (counters/gauges/"
            "histograms, canonical JSON) to this file and print a one-line "
            "summary on stderr — render with 'repro-auction metrics FILE'",
        )

    def add_scenario_flags(command: argparse.ArgumentParser, name: str) -> None:
        defaults = _FLAG_DEFAULTS[name]
        command.add_argument(
            "--mechanism", choices=["double", "standard"], default=defaults["mechanism"]
        )
        command.add_argument("--users", type=int, default=defaults["users"])
        command.add_argument("--providers", type=int, default=defaults["providers"])
        command.add_argument(
            "--k", type=int, default=defaults["k"], help="tolerated coalition size"
        )
        command.add_argument(
            "--parallel", action="store_true", help="use the parallel allocator"
        )
        command.add_argument(
            "--epsilon", type=float, default=defaults["epsilon"],
            help="standard-auction accuracy knob",
        )
        command.add_argument(
            "--engine",
            choices=list(ENGINES),
            default=defaults["engine"],
            help="execution engine for the standard auction (bit-identical results)",
        )
        command.add_argument("--seed", type=int, default=defaults["seed"])
        if defaults["rounds"] is not None:
            command.add_argument(
                "--rounds", type=int, default=defaults["rounds"],
                help="number of workload instances",
            )

    run = sub.add_parser("run", help="run one distributed auction round")
    add_scenario_flags(run, "run")
    add_spec_options(run)
    add_obs_options(run)

    fig4 = sub.add_parser("fig4", help="regenerate Figure 4 (double auction running time)")
    fig4.add_argument("--users", type=int, nargs="+", default=[100, 200, 400, 600, 800, 1000])
    fig4.add_argument("--k", type=int, nargs="+", default=[1, 2, 3])
    fig4.add_argument("--providers", type=int, default=8)
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--series", action="store_true", help="print per-series summary")
    fig4.add_argument("--json", action="store_true", help="print machine-readable JSON records")
    add_grid_options(fig4)

    fig5 = sub.add_parser("fig5", help="regenerate Figure 5 (standard auction running time)")
    fig5.add_argument("--users", type=int, nargs="+", default=[25, 50, 75, 100, 125])
    fig5.add_argument("--parallelism", type=int, nargs="+", default=[1, 2, 4])
    fig5.add_argument("--providers", type=int, default=8)
    fig5.add_argument("--epsilon", type=float, default=0.25)
    fig5.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=DEFAULT_ENGINE,
        help="execution engine for the standard auction (bit-identical results)",
    )
    fig5.add_argument("--seed", type=int, default=0)
    fig5.add_argument("--series", action="store_true", help="print per-series summary")
    fig5.add_argument("--json", action="store_true", help="print machine-readable JSON records")
    add_grid_options(fig5)

    batch = sub.add_parser(
        "batch", help="run many rounds of one scenario with amortised setup"
    )
    add_scenario_flags(batch, "batch")
    add_spec_options(batch)

    sweep = sub.add_parser(
        "sweep", help="run a grid of scenarios from a sweep spec file"
    )
    sweep.add_argument(
        "--spec", metavar="FILE", required=True, help="sweep/scenario spec file (.json or .toml)"
    )
    sweep.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted-path override applied to the sweep's base spec; repeatable",
    )
    sweep.add_argument("--series", action="store_true", help="print per-series summary")
    sweep.add_argument("--json", action="store_true", help="print machine-readable JSON records")
    add_grid_options(sweep)
    add_obs_options(sweep)

    resilience = sub.add_parser(
        "resilience",
        help="audit the k-resilience claim: coalition deviations vs the honest run",
    )
    resilience.add_argument(
        "--spec",
        metavar="FILE",
        required=True,
        help="resilience spec file (.json or .toml): a 'base' scenario plus "
        "k/coalitions/adversaries/schedules/seeds",
    )
    resilience.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted-path override applied to the audit spec (e.g. --set k=2 "
        "or --set base.users=30); repeatable",
    )
    resilience.add_argument(
        "--json", action="store_true", help="print machine-readable JSON records"
    )
    add_grid_options(resilience)
    add_obs_options(resilience)

    chaos = sub.add_parser(
        "chaos",
        help="audit the protocol under injected faults: conservation, "
        "termination, replay and journal-repair invariants per cell",
    )
    chaos.add_argument(
        "--spec",
        metavar="FILE",
        required=True,
        help="chaos spec file (.json or .toml): a 'base' scenario plus "
        "faults/recovery/seeds",
    )
    chaos.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted-path override applied to the audit spec (e.g. --set "
        "recovery.max_retries=5 or --set base.users=30); repeatable",
    )
    chaos.add_argument(
        "--json", action="store_true", help="print machine-readable JSON records"
    )
    chaos.add_argument(
        "--quarantine",
        action="store_true",
        help="crash tolerance: survive worker failures under --workers by "
        "retrying with a literal bound, then quarantine cells that keep "
        "failing (journaled with --output, so --resume re-runs exactly "
        "those) and keep executing the rest of the grid",
    )
    add_grid_options(chaos)
    add_obs_options(chaos)

    results = sub.add_parser(
        "results",
        help="inspect or convert results journals (jsonl or columnar, sniffed)",
    )
    results_sub = results.add_subparsers(dest="results_command", required=True)
    summarize = results_sub.add_parser(
        "summarize",
        help="stream a journal into per-column count/mean/min/max/percentile "
        "and throughput summaries (constant memory: the record list is "
        "never materialised)",
    )
    summarize.add_argument(
        "journal", metavar="FILE", help="the results journal (jsonl or columnar)"
    )
    summarize.add_argument(
        "--json", action="store_true", help="print the summary as a JSON document"
    )
    convert = results_sub.add_parser(
        "convert",
        help="rewrite a journal in another store format; the manifest — "
        "fingerprint included — is preserved, so --resume continues the "
        "converted journal exactly where the original stopped",
    )
    convert.add_argument(
        "source", metavar="SOURCE", help="the journal to convert (format sniffed)"
    )
    convert.add_argument(
        "destination", metavar="DEST", help="fresh path for the converted journal"
    )
    convert.add_argument(
        "--to",
        choices=_store_format_choices(),
        default=None,
        help="target format (default: the other one of jsonl/columnar)",
    )

    trace = sub.add_parser(
        "trace",
        help="export a recorded trace journal (jsonl or columnar, sniffed) "
        "as Chrome-trace JSON or a text listing",
    )
    trace.add_argument(
        "journal", metavar="FILE", help="the trace journal written by --trace"
    )
    trace.add_argument(
        "--format",
        choices=["chrome", "text"],
        default="chrome",
        help="'chrome' (default): Trace Event JSON loadable at "
        "https://ui.perfetto.dev or chrome://tracing; 'text': an indented "
        "one-line-per-span listing",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render a metrics snapshot written by --metrics FILE",
    )
    metrics.add_argument(
        "snapshot", metavar="FILE", help="the snapshot JSON written by --metrics"
    )
    metrics.add_argument(
        "--json", action="store_true", help="re-print the snapshot as indented JSON"
    )

    lint = sub.add_parser(
        "lint",
        help="run the determinism & contract linter (RPA rule set) over source trees",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src and benchmarks, "
        "whichever exist under the current directory)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format: human-readable text (default) or the versioned "
        "JSON document CI archives",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RPAxxx[,RPAxxx...]",
        help="run only these rule codes (repeatable, comma-separable); "
        "unknown codes are a path-precise error",
    )

    return parser


def _store_format_choices():
    """The registered store-backend kinds (the --store-format/--to choices)."""
    from repro.scenarios.store import STORE_BACKENDS

    return STORE_BACKENDS.available()


def _workers_argument(value: str):
    """Parse ``--workers``: a positive integer or the literal ``auto``.

    Range/CPU validation happens in
    :func:`repro.scenarios.dispatch.resolve_workers`; this only decides the
    type so argparse produces a clean usage error for non-numeric garbage.
    """
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None


# -------------------------------------------------------------- spec construction --
#: The single source of the ``run``/``batch`` flag defaults: ``build_parser``
#: feeds these into ``add_argument(default=...)`` and ``_flag_overrides`` reads
#: them back, so the two can never drift apart.  When a spec file is given, a
#: flag at its default value is NOT treated as an override — argparse cannot
#: distinguish "--users 50" from an omitted flag, and stomping the spec with
#: parser defaults would make spec files pointless (use --set in that case).
_FLAG_DEFAULTS = {
    "run": {"mechanism": "double", "users": 50, "providers": 8, "k": 1,
            "epsilon": 0.25, "engine": DEFAULT_ENGINE, "seed": 0, "rounds": None},
    "batch": {"mechanism": "standard", "users": 50, "providers": 8, "k": 1,
              "epsilon": 0.25, "engine": DEFAULT_ENGINE, "seed": 0, "rounds": 10},
}


def _flag_overrides(args: argparse.Namespace, command: str, base: ScenarioSpec) -> Dict[str, Any]:
    """Translate the historical CLI flags into dotted-path spec overrides."""
    defaults = _FLAG_DEFAULTS[command]
    spec_given = args.spec is not None

    def explicit(name: str) -> bool:
        value = getattr(args, name, None)
        return value is not None and (not spec_given or value != defaults.get(name))

    overrides: Dict[str, Any] = {}
    if explicit("mechanism"):
        overrides["mechanism"] = args.mechanism
    mechanism_kind = overrides.get("mechanism", base.mechanism.kind)
    if mechanism_kind == "standard" and (not spec_given or explicit("epsilon")):
        overrides["mechanism.epsilon"] = args.epsilon
    if explicit("users"):
        overrides["users"] = args.users
    if explicit("providers"):
        overrides["providers"] = args.providers
    if explicit("k"):
        overrides["config.k"] = args.k
    if args.parallel:
        overrides["config.parallel"] = True
    if explicit("engine"):
        overrides["engine"] = args.engine
    if explicit("seed"):
        overrides["seed"] = args.seed
    if command == "batch" and explicit("rounds"):
        overrides["rounds"] = args.rounds
    return overrides


def _build_scenario(args: argparse.Namespace, command: str) -> ScenarioSpec:
    """The scenario for ``run``/``batch``: spec file < historical flags < --set."""
    if args.spec is not None:
        spec = load_any(args.spec)
        if isinstance(spec, SweepSpec):
            raise SpecError(args.spec, "this file holds a sweep spec; use 'repro-auction sweep'")
    else:
        spec = ScenarioSpec(
            name=f"cli-{command}",
            rounds=_FLAG_DEFAULTS[command]["rounds"] or 1,
        )
    overrides = _flag_overrides(args, command, spec)
    overrides.update(parse_assignments(args.overrides))
    return spec_with_overrides(spec, overrides)


# ------------------------------------------------------------------- sub-commands --
def _observed(args: argparse.Namespace, name: str, body):
    """Run ``body()`` under an installed observation when --trace/--metrics ask.

    Without either flag this is a plain call — the observability plane stays
    completely uninstalled (the hooks' disabled mode).  With them, the
    observation wraps exactly the simulation work: the trace journal is
    closed and the metrics snapshot written even if ``body`` raises, so an
    aborted run still leaves inspectable artifacts.
    """
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace and not metrics_out:
        return body()
    from repro.obs import observe

    with observe(trace=trace, name=name) as observation:
        try:
            return body()
        finally:
            if trace:
                print(
                    f"trace {trace}: {len(observation.tracer.spans)} spans",
                    file=sys.stderr,
                )
            if metrics_out:
                hub = observation.metrics
                with open(metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(hub.snapshot_json() + "\n")
                print(f"{hub.summary_line()} -> {metrics_out}", file=sys.stderr)


def _command_run(args: argparse.Namespace) -> int:
    spec = _build_scenario(args, "run")

    def body():
        with Simulation(spec) as simulation:
            return simulation.run()

    record = _observed(args, spec.name, body)
    if args.json:
        import json

        print(json.dumps(record.to_dict(), indent=2))
        return 0
    config = spec.config
    print(f"mechanism       : {record.mechanism}")
    print(
        f"users/providers : {record.users}/{record.providers} "
        f"(k={config.k}, parallel={config.parallel})"
    )
    print(f"outcome         : {'ABORT' if record.aborted else 'agreed (x, p)'}")
    print(f"elapsed (model) : {record.elapsed_seconds:.4f} s")
    print(f"messages        : {record.messages}")
    print(f"bytes           : {record.bytes_transferred}")
    if not record.aborted:
        print(f"winning users   : {record.winners}")
        print(f"total paid      : {record.total_paid:.4f}")
        print(f"total received  : {record.total_received:.4f}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    spec = _build_scenario(args, "batch")
    with Simulation(spec) as simulation:
        summary = simulation.run_batch()
        mechanism = simulation.mechanism.name
    if args.json:
        print(summary.to_json())
    else:
        config = spec.config
        print(f"mechanism       : {mechanism}")
        print(
            f"users/providers : {spec.users}/{spec.providers} "
            f"(k={config.k}, parallel={config.parallel})"
        )
        print(f"rounds          : {summary.total_rounds} ({summary.aborted_rounds} aborted)")
        print(f"total (model)   : {summary.total_elapsed_seconds:.4f} s")
        print(f"mean (model)    : {summary.mean_elapsed_seconds:.4f} s")
    return 0 if summary.aborted_rounds == 0 else 1


def _grid_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """The run_sweep kwargs of the shared --workers/--output/--store-format/--resume flags."""
    if args.resume and not args.output:
        raise SpecError("--resume", "resuming requires --output FILE (the journal to continue)")
    if args.store_format and not args.output:
        raise SpecError(
            "--store-format",
            "choosing a store format requires --output FILE (the journal to write)",
        )
    return {
        "workers": args.workers,
        "store": args.output,
        "store_format": args.store_format,
        "resume": args.resume,
    }


def _report_store(result: SweepResult, args: argparse.Namespace) -> None:
    """One stderr line about the journal, greppable by CI resume assertions."""
    if args.output:
        print(
            f"store {args.output}: reused {result.resumed_rounds} journaled rounds, "
            f"executed {result.executed_rounds} new rounds",
            file=sys.stderr,
        )
    _report_quarantine(result)


def _report_quarantine(result) -> None:
    """One stderr line per run about quarantined work, greppable by CI."""
    quarantined = getattr(result, "quarantined", None)
    if quarantined:
        cells = ", ".join(
            f"({entry['point']},{entry['instance']}): {entry['error']}"
            for entry in quarantined
        )
        print(f"quarantined {len(quarantined)}: {cells}", file=sys.stderr)


def _print_sweep(result: SweepResult, args: argparse.Namespace) -> None:
    _report_store(result, args)
    if args.json:
        print(result.to_json())
        return
    points = [record_to_point(result.name, record) for record in result.records]
    print(format_series(points) if args.series else format_points(points))


def _command_figure(experiment, args: argparse.Namespace) -> int:
    result = experiment.run_sweep_result(**_grid_kwargs(args))
    _report_store(result, args)
    if args.json:
        print(result.to_json())
        return 0
    points = experiment.points_from_result(result)
    print(format_series(points) if args.series else format_points(points))
    return 0


def _command_fig4(args: argparse.Namespace) -> int:
    experiment = Figure4Experiment(
        num_providers=args.providers,
        k_values=args.k,
        n_values=args.users,
        seed=args.seed,
    )
    return _command_figure(experiment, args)


def _command_fig5(args: argparse.Namespace) -> int:
    experiment = Figure5Experiment(
        num_providers=args.providers,
        p_values=args.parallelism,
        n_values=args.users,
        epsilon=args.epsilon,
        engine=args.engine,
        seed=args.seed,
    )
    return _command_figure(experiment, args)


def _command_resilience(args: argparse.Namespace) -> int:
    spec = load_resilience(args.spec)
    spec = resilience_with_overrides(spec, parse_assignments(args.overrides))
    result = _observed(
        args, spec.name, lambda: run_resilience(spec, **_grid_kwargs(args))
    )
    if args.output:
        print(
            f"store {args.output}: reused {result.resumed_cells} journaled cells, "
            f"executed {result.executed_cells} new cells",
            file=sys.stderr,
        )
    if args.json:
        print(result.to_json())
    else:
        _print_resilience(result)
    return 0 if result.is_resilient() else 1


def _command_chaos(args: argparse.Namespace) -> int:
    spec = load_chaos(args.spec)
    spec = chaos_with_overrides(spec, parse_assignments(args.overrides))
    failure_mode = "quarantine" if args.quarantine else "raise"
    result = _observed(
        args,
        spec.name,
        lambda: run_chaos(spec, failure_mode=failure_mode, **_grid_kwargs(args)),
    )
    if args.output:
        print(
            f"store {args.output}: reused {result.resumed_cells} journaled cells, "
            f"executed {result.executed_cells} new cells, "
            f"quarantined {len(result.quarantined)} cells",
            file=sys.stderr,
        )
    _report_quarantine(result)
    if args.json:
        print(result.to_json())
    else:
        _print_chaos(result)
    return 0 if result.is_clean() else 1


def _print_chaos(result: ChaosResult) -> None:
    header = (
        f"{'fault':<28s} {'seed':>6s} {'sent':>6s} {'lost':>6s} {'retx':>6s} "
        f"{'term':<5s} {'consv':<6s} {'replay':<7s} {'store':<6s} {'verdict':<8s}"
    )
    print(f"chaos: {result.name}")
    print(header)
    print("-" * len(header))
    for record in result.records:
        print(
            f"{record.label:<28s} {record.seed:>6d} {record.messages_sent:>6d} "
            f"{record.messages_lost:>6d} {record.retransmissions:>6d} "
            f"{'yes' if record.terminated else 'NO':<5s} "
            f"{'ok' if record.conservation_ok else 'FAIL':<6s} "
            f"{'ok' if record.replay_ok else 'FAIL':<7s} "
            f"{'ok' if record.store_repair_ok else 'FAIL':<6s} "
            f"{'ok' if record.ok else 'FAILED':<8s}"
        )
    print()
    failing = result.failing_cells
    if result.is_clean():
        print(
            f"VERDICT: clean — every invariant held across "
            f"{len(result.records)} cells"
        )
    elif failing:
        print(
            f"VERDICT: NOT CLEAN — {len(failing)} of {len(result.records)} "
            f"cells violated an invariant"
        )
    else:
        print(
            f"VERDICT: NOT CLEAN — {len(result.quarantined)} cells were "
            f"quarantined (no record produced)"
        )


def _print_resilience(result: ResilienceResult) -> None:
    header = (
        f"{'deviation':<28s} {'coalition':<20s} {'schedule':<12s} "
        f"{'seed':>6s} {'outcome':<8s} {'max gain':>12s}"
    )
    print(f"audit: {result.name}")
    print(header)
    print("-" * len(header))
    for record in result.records:
        outcome = "ABORT" if record.deviating_aborted else "agreed"
        coalition = ",".join(record.coalition)
        print(
            f"{record.label:<28s} {coalition:<20s} {record.schedule:<12s} "
            f"{record.seed:>6d} {outcome:<8s} {record.max_gain:>12.6f}"
        )
    print()
    if result.is_resilient():
        print(
            f"VERDICT: resilient — no profitable or outcome-altering deviation "
            f"across {len(result.records)} cells"
        )
    else:
        print("VERDICT: NOT resilient")
        for record in result.profitable_deviations:
            print(f"  profitable: {record.label} by {','.join(record.coalition)}")
        for record in result.influence_violations:
            print(f"  altered outcome: {record.label} by {','.join(record.coalition)}")


def _command_results(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the results plane (and its numpy
    # dependency surface) should not tax the simulation subcommands' startup.
    from repro.scenarios.aggregate import render_summary
    from repro.scenarios.store import ResultsStore, convert_journal

    if args.results_command == "summarize":
        summary = ResultsStore(args.journal).summary()
        if args.json:
            import json

            print(json.dumps(summary, indent=2))
        else:
            print(render_summary(summary))
        return 0
    outcome = convert_journal(args.source, args.destination, to=args.to)
    print(
        f"converted {outcome['records']} records: {outcome['source']} "
        f"({outcome['from']}) -> {outcome['destination']} ({outcome['to']})"
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Imported here, not at module top: lint is developer tooling and the six
    # simulation subcommands should not pay for (or be breakable by) it.
    from repro.analysis import lint_paths, render_json, render_text

    paths = list(args.paths)
    if not paths:
        paths = [path for path in ("src", "benchmarks") if os.path.exists(path)]
        if not paths:
            raise SpecError(
                "paths", "no src/ or benchmarks/ directory here; name paths to lint"
            )
    report = lint_paths(paths, select=args.select or None)
    print(render_json(report) if args.format == "json" else render_text(report))
    return 0 if report.clean else 1


def _command_sweep(args: argparse.Namespace) -> int:
    loaded = load_any(args.spec)
    if isinstance(loaded, ScenarioSpec):
        loaded = SweepSpec(base=loaded, name=loaded.name)
    sweep = loaded.with_base_overrides(parse_assignments(args.overrides))
    result = _observed(args, sweep.name, lambda: run_sweep(sweep, **_grid_kwargs(args)))
    _print_sweep(result, args)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    # Imported here, not at module top: export is an offline tool and the
    # simulation subcommands should not pay for it.
    from repro.obs.export import render_chrome, render_text
    from repro.obs.trace import load_trace

    if not os.path.exists(args.journal):
        raise SpecError(args.journal, "trace journal not found")
    _manifest, spans = load_trace(args.journal)
    print(render_chrome(spans) if args.format == "chrome" else render_text(spans))
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.metrics import render_metrics

    try:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except OSError as exc:
        raise SpecError(args.snapshot, f"cannot read metrics snapshot: {exc}")
    except ValueError as exc:
        raise SpecError(args.snapshot, f"not a metrics snapshot JSON document: {exc}")
    print(json.dumps(snapshot, indent=2) if args.json else render_metrics(snapshot))
    return 0


#: The sub-command dispatch table (argparse enforces membership).
_COMMANDS = {
    "run": _command_run,
    "fig4": _command_fig4,
    "fig5": _command_fig5,
    "batch": _command_batch,
    "sweep": _command_sweep,
    "resilience": _command_resilience,
    "chaos": _command_chaos,
    "results": _command_results,
    "trace": _command_trace,
    "metrics": _command_metrics,
    "lint": _command_lint,
}


def _quiet_broken_pipe() -> int:
    """Exit 0 the way standard Unix filters do when the reader hangs up.

    The guard lives at the entrypoint so *every* sub-command survives
    ``| head``, not just the ones somebody remembered to wrap.  Both streams
    are flushed (tolerating the pipe raising again) and detached onto
    ``/dev/null``, so the interpreter's shutdown flush cannot raise a second
    time; streams without a real file descriptor (pytest capture, StringIO)
    have nothing buffered at the OS level and are skipped.
    """
    devnull = os.open(os.devnull, os.O_WRONLY)
    for stream in (sys.stdout, sys.stderr):
        try:
            stream.flush()
        except (OSError, ValueError):
            pass
        try:
            os.dup2(devnull, stream.fileno())
        except (OSError, ValueError, AttributeError):
            pass
    os.close(devnull)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        status = _COMMANDS[args.command](args)
        # Flush inside the guard: a sub-command's output may still be sitting
        # in the stdout buffer, and a closed pipe would otherwise surface as
        # an unhandled BrokenPipeError in the interpreter's shutdown flush —
        # after main() already returned success.
        sys.stdout.flush()
        return status
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        return _quiet_broken_pipe()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
