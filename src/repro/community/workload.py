"""Workload generators matching the paper's evaluation parameters (Section 6).

Both experiments draw user bids uniformly from [0.75, 1.25] and bandwidth demands
uniformly from (0, 1].  They differ in how provider capacities (and costs) are set:

* **Double auction (§6.2, Figure 4)** — each provider's capacity is the per-provider
  share of the total demand scaled by a random factor in [0.5, 1.5] (so both
  under- and over-provisioned cases occur), and providers have a unit cost uniform
  in (0, 1].
* **Standard auction (§6.3, Figure 5)** — capacities are scaled down by a random
  factor in [0, 0.25] of the per-provider demand share, so that "roughly no more than
  a quarter of the users win the bids"; providers do not bid (zero cost).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.common import stable_hash

__all__ = [
    "WorkloadParameters",
    "DoubleAuctionWorkload",
    "StandardAuctionWorkload",
    "VRSessionWorkload",
    "default_provider_ids",
]


def default_provider_ids(num_providers: int) -> List[str]:
    """The canonical provider-id scheme shared by workloads, runners and figures.

    Kept in one place so the ids a workload generates and the executor subsets
    the experiment harness selects can never drift apart.
    """
    return [f"p{j:02d}" for j in range(num_providers)]


@dataclass(frozen=True)
class WorkloadParameters:
    """The distribution parameters shared by both workloads (paper defaults)."""

    bid_low: float = 0.75
    bid_high: float = 1.25
    demand_low: float = 0.0  # exclusive
    demand_high: float = 1.0

    def draw_bid(self, rng: random.Random) -> float:
        return rng.uniform(self.bid_low, self.bid_high)

    def draw_demand(self, rng: random.Random) -> float:
        # (0, 1]: reject the measure-zero 0 draw.
        value = rng.uniform(self.demand_low, self.demand_high)
        while value <= self.demand_low:
            value = rng.uniform(self.demand_low, self.demand_high)
        return value


class _BaseWorkload:
    """Shared machinery: user generation and deterministic seeding."""

    def __init__(self, parameters: Optional[WorkloadParameters] = None, seed: int = 0) -> None:
        self.parameters = parameters if parameters is not None else WorkloadParameters()
        self.seed = seed

    def _rng(self, *scope) -> random.Random:
        return random.Random(stable_hash(self.seed, type(self).__name__, *scope))

    def _users(self, num_users: int, rng: random.Random) -> List[UserBid]:
        return [
            UserBid(
                user_id=f"u{i:04d}",
                unit_value=self.parameters.draw_bid(rng),
                demand=self.parameters.draw_demand(rng),
            )
            for i in range(num_users)
        ]


class DoubleAuctionWorkload(_BaseWorkload):
    """Figure 4 workload: double auction with provider costs and ±50% capacity scaling.

    Args:
        capacity_low/high: the random scaling factor applied to each provider's share
            of the total demand (paper: [0.5, 1.5]).
        cost_low/high: provider unit cost range (paper: (0, 1]).
    """

    def __init__(
        self,
        parameters: Optional[WorkloadParameters] = None,
        capacity_low: float = 0.5,
        capacity_high: float = 1.5,
        cost_low: float = 0.0,
        cost_high: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(parameters, seed)
        self.capacity_low = capacity_low
        self.capacity_high = capacity_high
        self.cost_low = cost_low
        self.cost_high = cost_high

    def generate(
        self,
        num_users: int,
        num_providers: int,
        provider_ids: Optional[Sequence[str]] = None,
        instance: int = 0,
    ) -> BidVector:
        """Generate one instance with ``num_users`` users and ``num_providers`` providers."""
        rng = self._rng(num_users, num_providers, instance)
        users = self._users(num_users, rng)
        total_demand = sum(u.demand for u in users)
        share = total_demand / max(1, num_providers)
        ids = (
            list(provider_ids)
            if provider_ids is not None
            else default_provider_ids(num_providers)
        )
        providers = []
        for provider_id in ids:
            cost = rng.uniform(self.cost_low, self.cost_high)
            while cost <= self.cost_low:
                cost = rng.uniform(self.cost_low, self.cost_high)
            capacity = share * rng.uniform(self.capacity_low, self.capacity_high)
            providers.append(ProviderAsk(provider_id, cost, capacity))
        return BidVector(tuple(users), tuple(providers))


class VRSessionWorkload(_BaseWorkload):
    """Bursty "VR session" bandwidth demand over a community network.

    Models the cellular/VR-style demand mix of federated-caching studies
    (cf. Tharakan et al., arXiv:2501.11745): at any instant a fraction of the
    users are inside an immersive session and stream at near-capacity rates
    while valuing bandwidth highly; everyone else produces light background
    traffic.  Compared to the paper's uniform §6 workloads this yields a
    heavy-tailed, bimodal demand distribution, which is exactly the stress
    shape the scenario registry exists to express as data.

    Args:
        session_fraction: probability that a user is in an active VR session.
        burst_low/high: demand range of an in-session user.
        idle_low/high: demand range of a background user.
        value_boost: multiplicative uplift on an in-session user's unit value
            (VR sessions are latency/bandwidth critical, so users bid more).
        capacity_low/high: random scaling factor applied to each provider's
            share of the total demand (scarce by default, like §6.3).
        cost_low/high: provider unit cost range; the default of zero matches
            the standard auction (providers do not bid), a positive range
            makes the workload usable with the double auction too.
    """

    def __init__(
        self,
        parameters: Optional[WorkloadParameters] = None,
        session_fraction: float = 0.3,
        burst_low: float = 0.6,
        burst_high: float = 1.0,
        idle_low: float = 0.05,
        idle_high: float = 0.3,
        value_boost: float = 1.5,
        capacity_low: float = 0.1,
        capacity_high: float = 0.5,
        cost_low: float = 0.0,
        cost_high: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(parameters, seed)
        if not 0.0 <= session_fraction <= 1.0:
            raise ValueError("session_fraction must be in [0, 1]")
        if not 0.0 <= burst_low <= burst_high:
            raise ValueError("require 0 <= burst_low <= burst_high")
        if not 0.0 <= idle_low <= idle_high:
            raise ValueError("require 0 <= idle_low <= idle_high")
        if value_boost <= 0:
            raise ValueError("value_boost must be positive")
        if not 0.0 <= capacity_low <= capacity_high:
            raise ValueError("require 0 <= capacity_low <= capacity_high")
        if not 0.0 <= cost_low <= cost_high:
            raise ValueError("require 0 <= cost_low <= cost_high")
        self.session_fraction = session_fraction
        self.burst_low = burst_low
        self.burst_high = burst_high
        self.idle_low = idle_low
        self.idle_high = idle_high
        self.value_boost = value_boost
        self.capacity_low = capacity_low
        self.capacity_high = capacity_high
        self.cost_low = cost_low
        self.cost_high = cost_high

    def generate(
        self,
        num_users: int,
        num_providers: int,
        provider_ids: Optional[Sequence[str]] = None,
        instance: int = 0,
    ) -> BidVector:
        """Generate one instance with ``num_users`` users and ``num_providers`` providers."""
        rng = self._rng(num_users, num_providers, instance)
        users = []
        for i in range(num_users):
            in_session = rng.random() < self.session_fraction
            value = self.parameters.draw_bid(rng)
            if in_session:
                demand = rng.uniform(self.burst_low, self.burst_high)
                value *= self.value_boost
            else:
                demand = rng.uniform(self.idle_low, self.idle_high)
            users.append(
                UserBid(user_id=f"u{i:04d}", unit_value=value, demand=max(demand, 1e-6))
            )
        total_demand = sum(u.demand for u in users)
        share = total_demand / max(1, num_providers)
        ids = (
            list(provider_ids)
            if provider_ids is not None
            else default_provider_ids(num_providers)
        )
        providers = []
        for provider_id in ids:
            scale = rng.uniform(self.capacity_low, self.capacity_high)
            capacity = max(share * scale, 0.05)
            cost = (
                rng.uniform(self.cost_low, self.cost_high) if self.cost_high > 0 else 0.0
            )
            providers.append(ProviderAsk(provider_id, cost, capacity))
        return BidVector(tuple(users), tuple(providers))


class StandardAuctionWorkload(_BaseWorkload):
    """Figure 5 workload: standard auction with scarce capacity (≈ quarter of users win).

    Args:
        capacity_low/high: the random scaling factor applied to each provider's share
            of the total demand (paper: [0, 0.25]).
    """

    def __init__(
        self,
        parameters: Optional[WorkloadParameters] = None,
        capacity_low: float = 0.0,
        capacity_high: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__(parameters, seed)
        self.capacity_low = capacity_low
        self.capacity_high = capacity_high

    def generate(
        self,
        num_users: int,
        num_providers: int,
        provider_ids: Optional[Sequence[str]] = None,
        instance: int = 0,
    ) -> BidVector:
        """Generate one instance with ``num_users`` users and ``num_providers`` providers."""
        rng = self._rng(num_users, num_providers, instance)
        users = self._users(num_users, rng)
        total_demand = sum(u.demand for u in users)
        share = total_demand / max(1, num_providers)
        ids = (
            list(provider_ids)
            if provider_ids is not None
            else default_provider_ids(num_providers)
        )
        providers = []
        for provider_id in ids:
            scale = rng.uniform(self.capacity_low, self.capacity_high)
            # Keep a small floor so a provider can host at least one typical demand.
            capacity = max(share * scale, 0.05)
            providers.append(ProviderAsk(provider_id, 0.0, capacity))
        return BidVector(tuple(users), tuple(providers))
