"""Synthetic community-network topologies.

A community network is a wireless mesh built bottom-up by its members; a small subset
of nodes own gateways with direct Internet access and act as bandwidth providers for
everyone else (Section 5.1).  The generator below produces such a topology as a random
geometric graph (nodes scattered in the unit square, links between nearby nodes, extra
links added to guarantee connectivity), designates the ``num_gateways`` best-connected
nodes as gateways, and groups nodes into "sites" (super-nodes) that the two-tier
LAN/WAN latency model uses — mirroring the paper's deployment where several containers
share a physical host.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.net.latency import LanWanLatencyModel

__all__ = ["CommunityNetwork", "generate_community_network"]


@dataclass
class CommunityNetwork:
    """A generated community-network topology.

    Attributes:
        graph: the mesh graph; node attributes include ``pos`` (unit-square
            coordinates), ``site`` (site label) and ``is_gateway``.
        gateways: ids of the gateway (provider) nodes.
        members: ids of the non-gateway (user) nodes.
        sites: mapping node id -> site label.
    """

    graph: nx.Graph
    gateways: List[str]
    members: List[str]
    sites: Dict[str, str] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def latency_model(self, **kwargs) -> LanWanLatencyModel:
        """A LAN/WAN latency model keyed on this topology's site assignment."""
        return LanWanLatencyModel(site_of=dict(self.sites), **kwargs)

    def hop_distance(self, a: str, b: str) -> int:
        """Number of mesh hops between two nodes (∞-safe: raises if disconnected)."""
        return nx.shortest_path_length(self.graph, a, b)

    def gateway_degrees(self) -> Dict[str, int]:
        return {g: self.graph.degree[g] for g in self.gateways}


def generate_community_network(
    num_nodes: int = 40,
    num_gateways: int = 8,
    num_sites: int = 4,
    radius: float = 0.25,
    seed: int = 0,
) -> CommunityNetwork:
    """Generate a connected mesh with gateway and site assignments.

    Args:
        num_nodes: total number of nodes (gateways + members).
        num_gateways: how many of them own an Internet gateway (the providers).
        num_sites: number of physical sites for the LAN/WAN latency model.
        radius: connection radius of the random geometric graph.
        seed: generation seed.
    """
    if num_gateways >= num_nodes:
        raise ValueError("need more nodes than gateways")
    if num_sites < 1:
        raise ValueError("need at least one site")
    rng = random.Random(seed)
    positions = {
        f"n{i:03d}": (rng.random(), rng.random()) for i in range(num_nodes)
    }
    graph = nx.Graph()
    for node, pos in positions.items():
        graph.add_node(node, pos=pos)
    nodes = list(positions)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            ax, ay = positions[a]
            bx, by = positions[b]
            if math.hypot(ax - bx, ay - by) <= radius:
                graph.add_edge(a, b)
    # Guarantee connectivity by chaining components through their closest pairs.
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        first, second = components[0], components[1]
        best: Tuple[float, str, str] = (float("inf"), first[0], second[0])
        for a in first:
            for b in second:
                ax, ay = positions[a]
                bx, by = positions[b]
                distance = math.hypot(ax - bx, ay - by)
                if distance < best[0]:
                    best = (distance, a, b)
        graph.add_edge(best[1], best[2])
        components = [list(c) for c in nx.connected_components(graph)]

    # The best-connected nodes host the gateways (they see the most traffic).
    by_degree = sorted(graph.degree, key=lambda item: (-item[1], item[0]))
    gateways = sorted(node for node, _ in by_degree[:num_gateways])
    members = sorted(set(nodes) - set(gateways))

    # Sites: spatial clustering into vertical strips, which is what the paper's
    # deployment looks like (machines at UPC Campus, Hangar, Taradell).
    sites: Dict[str, str] = {}
    for node, (x, _) in positions.items():
        site_index = min(int(x * num_sites), num_sites - 1)
        sites[node] = f"site{site_index}"
        graph.nodes[node]["site"] = sites[node]
        graph.nodes[node]["is_gateway"] = node in gateways

    return CommunityNetwork(graph=graph, gateways=gateways, members=members, sites=sites)
