"""Bandwidth-reservation scenarios: topology + workload + mechanism, ready to run.

A scenario takes a generated community network, picks its gateways as the providers,
draws a workload for its member nodes, and exposes convenience constructors for the
centralised baseline, the distributed auctioneer, and a full
:class:`~repro.runtime.auction_run.AuctionRun` with bidder nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, BidVector
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.community.topology import CommunityNetwork, generate_community_network
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer
from repro.net.latency import LatencyModel
from repro.runtime.auction_run import AuctionRun

__all__ = ["BandwidthReservationScenario"]


@dataclass
class BandwidthReservationScenario:
    """A complete bandwidth-reservation scenario over a community network.

    Attributes:
        network: the community topology (gateways = providers).
        bids: the generated bid vector (users = member nodes of the network, truncated
            or padded with synthetic ids when the requested user count differs from
            the member count).
        mechanism: the allocation algorithm to use.
    """

    network: CommunityNetwork
    bids: BidVector
    mechanism: AllocationAlgorithm

    # -- constructors --------------------------------------------------------------
    @staticmethod
    def double_auction(
        num_users: int = 50,
        num_gateways: int = 8,
        num_nodes: Optional[int] = None,
        seed: int = 0,
    ) -> "BandwidthReservationScenario":
        """A §6.2-style double-auction scenario."""
        network = generate_community_network(
            num_nodes=num_nodes if num_nodes is not None else max(num_users + num_gateways, 20),
            num_gateways=num_gateways,
            seed=seed,
        )
        workload = DoubleAuctionWorkload(seed=seed)
        bids = workload.generate(num_users, num_gateways, provider_ids=network.gateways)
        return BandwidthReservationScenario(network, bids, DoubleAuction())

    @staticmethod
    def standard_auction(
        num_users: int = 30,
        num_gateways: int = 8,
        epsilon: float = 0.25,
        num_nodes: Optional[int] = None,
        seed: int = 0,
    ) -> "BandwidthReservationScenario":
        """A §6.3-style standard-auction scenario."""
        network = generate_community_network(
            num_nodes=num_nodes if num_nodes is not None else max(num_users + num_gateways, 20),
            num_gateways=num_gateways,
            seed=seed,
        )
        workload = StandardAuctionWorkload(seed=seed)
        bids = workload.generate(num_users, num_gateways, provider_ids=network.gateways)
        return BandwidthReservationScenario(network, bids, StandardAuction(epsilon=epsilon))

    # -- runners ----------------------------------------------------------------------
    @property
    def providers(self) -> Sequence[str]:
        return self.network.gateways

    def latency_model(self) -> LatencyModel:
        return self.network.latency_model()

    def centralized(self, base_latency: float = 0.0, seed: int = 0) -> CentralizedAuctioneer:
        """The trusted-auctioneer baseline for this scenario.

        ``seed`` is forwarded to the auctioneer (it drives the mechanism's
        internal randomness), matching :meth:`distributed` and
        :meth:`auction_run` — previously the centralised baseline silently
        ignored scenario seeding.
        """
        return CentralizedAuctioneer(self.mechanism, base_latency=base_latency, seed=seed)

    def distributed(
        self,
        config: Optional[FrameworkConfig] = None,
        measure_compute: bool = False,
        seed: int = 0,
    ) -> DistributedAuctioneer:
        return DistributedAuctioneer(
            self.mechanism,
            providers=list(self.providers),
            config=config if config is not None else FrameworkConfig(),
            latency_model=self.latency_model(),
            seed=seed,
            measure_compute=measure_compute,
        )

    def auction_run(
        self,
        config: Optional[FrameworkConfig] = None,
        seed: int = 0,
        **kwargs,
    ) -> AuctionRun:
        return AuctionRun(
            self.bids,
            self.mechanism,
            config=config if config is not None else FrameworkConfig(),
            latency_model=self.latency_model(),
            seed=seed,
            **kwargs,
        )
