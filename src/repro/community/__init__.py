"""Community-network case study (Section 5).

The paper evaluates the framework on bandwidth reservation at the Internet gateways of
a community network (Guifi.net).  The real network and its live demand are not
available offline, so this package generates synthetic but structurally faithful
scenarios:

* :mod:`repro.community.topology` — mesh community networks with a small subset of
  gateway nodes (the providers) and many member nodes (the users), plus the
  site-assignment used by the two-tier LAN/WAN latency model.
* :mod:`repro.community.workload` — the exact bid/demand/capacity distributions the
  evaluation section specifies (§6.2 for the double auction, §6.3 for the standard
  auction).
* :mod:`repro.community.scenario` — bundles a topology, a workload and a mechanism
  into a ready-to-run scenario.
"""

from repro.community.scenario import BandwidthReservationScenario
from repro.community.topology import CommunityNetwork, generate_community_network
from repro.community.workload import (
    DoubleAuctionWorkload,
    StandardAuctionWorkload,
    VRSessionWorkload,
    WorkloadParameters,
)

__all__ = [
    "BandwidthReservationScenario",
    "CommunityNetwork",
    "DoubleAuctionWorkload",
    "StandardAuctionWorkload",
    "VRSessionWorkload",
    "WorkloadParameters",
    "generate_community_network",
]
