"""repro — reproduction of "A Distributed Auctioneer for Resource Allocation in
Decentralized Systems" (Khan, Vilaça, Rodrigues, Freitag; ICDCS 2016).

The package is organised in layers, bottom-up:

``repro.net``
    A simulated asynchronous message-passing runtime (turn-based, fair schedules,
    reliable channels) plus a threaded in-process transport.  This is the substrate
    on which all distributed protocols run.

``repro.consensus``
    Rational-agent consensus building blocks: hash commitments, bid/bit-stream
    encoding, binary rational consensus with equivocation detection, and a
    multi-instance wrapper used by the bid agreement.

``repro.auctions``
    The auction mechanisms the paper evaluates: a truthful budget-balanced double
    auction (water-filling), a truthful (1-eps)-optimal standard auction with VCG
    payments, an exact VCG baseline and a greedy baseline.

``repro.core``
    The paper's contribution: the distributed auctioneer framework — bid agreement,
    input validation, common coin, data transfer, task graphs and the (parallel)
    allocator, chained by :class:`repro.core.framework.DistributedAuctioneer`.

``repro.runtime``
    Provider / bidder roles and end-to-end auction round orchestration.

``repro.adversary``
    Coalition and fault-injection behaviours used to test k-resilience.

``repro.gametheory``
    Utilities, empirical truthfulness and resilience checks.

``repro.community``
    The community-network (Guifi-like) case study: topology and workload generators.

``repro.bench``
    The benchmark harness used to regenerate Figures 4 and 5 of the paper.

``repro.scenarios``
    **The front door**: declarative, serializable scenario specs
    (:class:`~repro.scenarios.spec.ScenarioSpec`), component registries, and
    the :class:`~repro.scenarios.simulation.Simulation` facade that runs any
    spec through the runners above.  Start here; drop to the lower layers when
    you need custom objects a spec cannot express.
"""

from repro.auctions.base import (
    Allocation,
    AuctionResult,
    BidVector,
    Payments,
    ProviderAsk,
    UserBid,
)
from repro.core.framework import DistributedAuctioneer, FrameworkConfig
from repro.core.outcome import ABORT, Outcome

#: Scenario-layer names re-exported lazily (PEP 562): resolving them imports
#: repro.scenarios (and with it numpy/networkx) on first use, so a plain
#: ``import repro`` for the low-level API stays as cheap as before the
#: scenario layer existed.
_SCENARIO_EXPORTS = frozenset(
    {
        "RunRecord",
        "ScenarioSpec",
        "Simulation",
        "SpecError",
        "SweepSpec",
        "load_spec",
        "load_sweep",
        "run_sweep",
    }
)


def __getattr__(name):
    if name in _SCENARIO_EXPORTS:
        import repro.scenarios as _scenarios

        return getattr(_scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SCENARIO_EXPORTS)


__version__ = "1.1.0"

__all__ = [
    "ABORT",
    "Allocation",
    "AuctionResult",
    "BidVector",
    "DistributedAuctioneer",
    "FrameworkConfig",
    "Outcome",
    "Payments",
    "ProviderAsk",
    "RunRecord",
    "ScenarioSpec",
    "Simulation",
    "SpecError",
    "SweepSpec",
    "UserBid",
    "load_spec",
    "load_sweep",
    "run_sweep",
    "__version__",
]
