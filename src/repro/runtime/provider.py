"""Provider nodes with on-line bid collection and deadlines.

In a real deployment (and in the paper's prototype), providers wait for bids until a
deadline; bidders that did not submit a valid bid by then are represented by the
special value ⊥, which the bid agreement later turns into a neutral bid.  The
:class:`CollectingProviderNode` implements that behaviour on top of the
:class:`~repro.core.provider_protocol.FrameworkBlock`:

1. announce the provider's own ask to every other provider (providers are bidders in
   double auctions, and their capacity must be common knowledge in standard ones);
2. collect user bids and provider asks until either everything expected arrived or
   the deadline fires;
3. run the framework block (bid agreement + allocator);
4. announce the output to all bidders and finish.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, ProviderAsk
from repro.core.config import FrameworkConfig
from repro.core.provider_protocol import FrameworkBlock, ProviderInput
from repro.net.message import Message
from repro.net.node import Node, NodeContext
from repro.net.protocol import TAG_SEPARATOR, BlockHost, ProtocolBlock
from repro.runtime.bidder import BID_TAG, RESULT_TAG

__all__ = ["CollectingProviderNode", "ASK_TAG"]

#: Tag used by providers to distribute their own asks to their peers.
ASK_TAG = "announce_ask"


class CollectingProviderNode(Node):
    """A provider that collects bids until a deadline, then simulates the auctioneer.

    Args:
        provider_id: this provider's id.
        own_ask: this provider's ask (unit cost and capacity).
        algorithm: the allocation algorithm to simulate.
        config: framework configuration.
        expected_users: user ids whose bids are expected.
        providers: all provider ids (including this one).
        deadline: virtual-time seconds to wait for bids before starting the
            simulation with whatever arrived.
        announce_result: if True, send the output to every bidder when finished.
    """

    def __init__(
        self,
        provider_id: str,
        own_ask: ProviderAsk,
        algorithm: AllocationAlgorithm,
        config: FrameworkConfig,
        expected_users: Sequence[str],
        providers: Sequence[str],
        deadline: float = 1.0,
        announce_result: bool = True,
    ) -> None:
        super().__init__(provider_id)
        self.own_ask = own_ask
        self.algorithm = algorithm
        self.config = config
        self.expected_users = sorted(expected_users)
        self.providers = sorted(providers)
        self.deadline = deadline
        self.announce_result = announce_result
        self._received_bids: Dict[str, Any] = {}
        self._received_asks: Dict[str, Any] = {provider_id: own_ask}
        self._host: Optional[BlockHost] = None
        self._current_ctx: Optional[NodeContext] = None
        self._protocol_started = False
        self._early_protocol_traffic: list = []

    # -- Node interface -------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        self._current_ctx = ctx
        ctx.broadcast(self.providers, self.own_ask, tag=ASK_TAG)
        ctx.set_timer(self.deadline, "bid_deadline")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        self._current_ctx = ctx
        if self._host is not None and self._host.dispatch(ctx, message):
            return
        if self._host is None and TAG_SEPARATOR in message.tag:
            # Protocol traffic from a peer that started before this provider did;
            # keep it until the local protocol starts (reliable channels must not
            # lose messages).
            self._early_protocol_traffic.append(message)
            return
        if message.tag == BID_TAG:
            self._on_bid(ctx, message)
        elif message.tag == ASK_TAG:
            self._on_ask(ctx, message)
        elif message.is_timer() and message.tag.endswith("bid_deadline"):
            self._start_protocol(ctx)

    # -- collection -------------------------------------------------------------------
    def _on_bid(self, ctx: NodeContext, message: Message) -> None:
        if message.sender in self._received_bids or self._protocol_started:
            # Late or duplicate bids are ignored; the agreed vector will carry a
            # neutral bid if nothing usable arrived in time.
            return
        if message.sender not in self.expected_users:
            return
        self._received_bids[message.sender] = message.payload
        self._maybe_start_early(ctx)

    def _on_ask(self, ctx: NodeContext, message: Message) -> None:
        if message.sender not in self.providers or self._protocol_started:
            return
        self._received_asks.setdefault(message.sender, message.payload)
        self._maybe_start_early(ctx)

    def _maybe_start_early(self, ctx: NodeContext) -> None:
        """Start as soon as every expected bid and ask has arrived (before the deadline)."""
        if self._protocol_started:
            return
        if set(self._received_bids) == set(self.expected_users) and set(
            self._received_asks
        ) == set(self.providers):
            self._start_protocol(ctx)

    # -- the framework ------------------------------------------------------------------
    def _start_protocol(self, ctx: NodeContext) -> None:
        if self._protocol_started:
            return
        self._protocol_started = True
        provider_input = ProviderInput(
            provider_id=self.node_id,
            received_user_bids={
                uid: self._received_bids.get(uid) for uid in self.expected_users
            },
            received_provider_asks=dict(self._received_asks),
        )
        self._host = BlockHost(lambda: self._current_ctx, self.providers)
        # Replay protocol traffic that arrived before the local protocol started.
        for early in self._early_protocol_traffic:
            self._host.dispatch(ctx, early)
        self._early_protocol_traffic.clear()
        self._host.activate(
            "framework",
            FrameworkBlock(
                "framework",
                provider_input,
                self.algorithm,
                self.config,
                self.expected_users,
                self.providers,
            ),
            self._on_framework_done,
        )

    def _on_framework_done(self, block: ProtocolBlock) -> None:
        if self.announce_result and self._current_ctx is not None:
            # One broadcast (rather than a send loop) so the simulator measures
            # the result payload's wire size once for all users.
            self._current_ctx.broadcast(self.expected_users, block.result, tag=RESULT_TAG)
        self.finish(block.result)
