"""Full auction round orchestration (Figure 1: submit → simulate → collect).

:class:`AuctionRun` wires a complete round on a simulated network: one
:class:`~repro.runtime.bidder.BidderNode` per user (with a pluggable, possibly
adversarial strategy), one :class:`~repro.runtime.provider.CollectingProviderNode` per
provider, a deadline for bid collection, and the distributed simulation of the
auctioneer in between.  The result records both the providers' outcome (Definition 1)
and what each bidder observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, BidVector
from repro.auctions.engine import DEFAULT_ENGINE, resolve_engine
from repro.core.config import FrameworkConfig
from repro.core.outcome import Outcome
from repro.net.latency import LatencyModel
from repro.net.network import NetworkStats, SimNetwork
from repro.net.scheduler import Scheduler
from repro.runtime.bidder import BidderNode, BidderStrategy
from repro.runtime.provider import CollectingProviderNode

__all__ = ["AuctionRun", "AuctionRunResult"]


@dataclass
class AuctionRunResult:
    """Everything observable at the end of a full round."""

    outcome: Outcome
    bidder_observations: Dict[str, Any] = field(default_factory=dict)
    stats: Optional[NetworkStats] = None

    @property
    def aborted(self) -> bool:
        return self.outcome.aborted


class AuctionRun:
    """Build and run one complete auction round on a simulated network.

    Args:
        bids: the *true* valuations of users and the asks/capacities of providers.
        algorithm: the allocation algorithm the providers simulate.
        config: framework configuration.
        bidder_strategies: optional per-user strategy overrides (defaults: truthful).
        deadline: bid-collection deadline at the providers, in virtual seconds.
        engine: the execution engine for standard auctions — defaults to the
            library default (:data:`~repro.auctions.engine.DEFAULT_ENGINE`,
            the vectorized engine).  Pass ``"reference"`` to force the
            reference implementation, or ``None`` to run ``algorithm``
            exactly as given (see
            :func:`repro.auctions.engine.resolve_engine`; both engines are
            seed-for-seed bit-identical, so the choice only affects speed).
            A mechanism this run created by re-targeting is closed at the
            end of :meth:`execute`; pre-resolved mechanisms stay untouched.
        latency_model / scheduler / seed / measure_compute: simulation parameters,
            passed through to :class:`~repro.net.network.SimNetwork`.
    """

    def __init__(
        self,
        bids: BidVector,
        algorithm: AllocationAlgorithm,
        config: Optional[FrameworkConfig] = None,
        bidder_strategies: Optional[Mapping[str, BidderStrategy]] = None,
        deadline: float = 1.0,
        engine: Optional[str] = DEFAULT_ENGINE,
        latency_model: Optional[LatencyModel] = None,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        measure_compute: bool = False,
        wait_for_results: bool = True,
    ) -> None:
        self.bids = bids
        self.engine = engine
        self.algorithm = resolve_engine(algorithm, engine) if engine is not None else algorithm
        # If resolving created a fresh mechanism, this run owns its resources
        # (the vectorized engine's pivot pool) and shuts them down after execute().
        self._owns_algorithm = self.algorithm is not algorithm
        self.config = config if config is not None else FrameworkConfig()
        self.config.check_quorum(len(bids.providers))
        self.bidder_strategies = dict(bidder_strategies or {})
        self.deadline = deadline
        self.latency_model = latency_model
        self.scheduler = scheduler
        self.seed = seed
        self.measure_compute = measure_compute
        self.wait_for_results = wait_for_results

    def execute(self, max_steps: int = 2_000_000) -> AuctionRunResult:
        """Run the round and return the combined outcome plus per-bidder observations."""
        try:
            return self._execute(max_steps)
        finally:
            # Engine pools are created lazily, so closing here is safe even if
            # the run is executed again; pre-resolved mechanisms stay open.
            if self._owns_algorithm:
                close = getattr(self.algorithm, "close", None)
                if close is not None:
                    close()

    def _execute(self, max_steps: int) -> AuctionRunResult:
        provider_ids = self.bids.provider_ids
        user_ids = self.bids.user_ids
        network = SimNetwork(
            latency_model=self.latency_model,
            scheduler=self.scheduler,
            seed=self.seed,
            measure_compute=self.measure_compute,
        )
        for ask in self.bids.providers:
            network.add_node(
                CollectingProviderNode(
                    provider_id=ask.provider_id,
                    own_ask=ask,
                    algorithm=self.algorithm,
                    config=self.config,
                    expected_users=user_ids,
                    providers=provider_ids,
                    deadline=self.deadline,
                    announce_result=self.wait_for_results,
                )
            )
        for user in self.bids.users:
            network.add_node(
                BidderNode(
                    true_bid=user,
                    providers=provider_ids,
                    strategy=self.bidder_strategies.get(user.user_id),
                    wait_for_result=self.wait_for_results,
                )
            )
        stats = network.run(max_steps=max_steps)
        provider_outputs = {
            pid: network.node(pid).output if network.node(pid).finished else None
            for pid in provider_ids
        }
        outcome = Outcome.from_provider_outputs(
            provider_outputs,
            elapsed_time=stats.elapsed_time,
            messages=stats.messages_delivered,
            bytes_transferred=stats.bytes_delivered,
            degraded=any(
                getattr(network.node(pid), "degraded", False) for pid in provider_ids
            ),
        )
        observations = {
            uid: network.node(uid).output if network.node(uid).finished else None
            for uid in user_ids
        }
        return AuctionRunResult(outcome=outcome, bidder_observations=observations, stats=stats)
