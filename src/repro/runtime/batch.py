"""Batched execution of many auction rounds with amortised setup.

The community / Figure-4 scenarios run the same auction shape over and over:
one workload generator, one mechanism, one provider set — only the instance
(and sometimes the user count) varies per round.  Building a fresh
:class:`~repro.core.framework.DistributedAuctioneer` per round is cheap, but the
expensive per-round state is not: the vectorized engine's pivot pool and the
process-wide solve memo pay off only when they survive across rounds.

:class:`BatchAuctionRunner` holds exactly that long-lived state: the engine is
resolved once, the auctioneer per provider-count is built once, and repeated
rounds (including *repeated instances*, which the solve memo then serves from
cache) reuse them.  Results come back as plain per-round reports plus a compact
aggregate, which is what the benchmark harness and the CLI consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.auctions.base import AllocationAlgorithm
from repro.auctions.engine import DEFAULT_ENGINE, resolve_engine
from repro.community.workload import default_provider_ids
from repro.core.config import FrameworkConfig
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer, SimulationReport
from repro.net.latency import LatencyModel

__all__ = ["BatchAuctionRunner", "BatchRound", "BatchSummary", "RoundAggregates"]


@dataclass(frozen=True)
class BatchRound:
    """One round of a batch: its parameters and the simulation report."""

    num_users: int
    instance: int
    report: SimulationReport

    @property
    def aborted(self) -> bool:
        return self.report.aborted

    @property
    def elapsed_seconds(self) -> float:
        return self.report.elapsed_time


class RoundAggregates:
    """Aggregate arithmetic shared by every per-round result collection.

    Mix-in over any sequence of entries exposing ``aborted`` and
    ``elapsed_seconds`` (``BatchRound`` here, ``RunRecord`` in the scenario
    layer's :class:`~repro.scenarios.simulation.BatchResult`); subclasses
    provide the sequence via :meth:`_round_entries`.
    """

    def _round_entries(self) -> Sequence:
        raise NotImplementedError

    @property
    def total_rounds(self) -> int:
        return len(self._round_entries())

    @property
    def aborted_rounds(self) -> int:
        return sum(1 for r in self._round_entries() if r.aborted)

    @property
    def total_elapsed_seconds(self) -> float:
        return sum(r.elapsed_seconds for r in self._round_entries())

    @property
    def mean_elapsed_seconds(self) -> float:
        entries = self._round_entries()
        return self.total_elapsed_seconds / len(entries) if entries else 0.0


@dataclass
class BatchSummary(RoundAggregates):
    """Aggregate view over a batch of rounds."""

    rounds: List[BatchRound] = field(default_factory=list)

    def _round_entries(self) -> Sequence:
        return self.rounds


class BatchAuctionRunner:
    """Run many auction rounds of one scenario, amortising engine and setup state.

    Args:
        algorithm: the mechanism to simulate; re-targeted once via ``engine``.
        workload: a workload generator with the package's ``generate(num_users,
            num_providers, provider_ids=..., instance=...)`` signature.
        num_providers: providers (sellers) per round's workload.
        engine: the execution engine for standard auctions — defaults to the
            library default (:data:`~repro.auctions.engine.DEFAULT_ENGINE`,
            the vectorized engine); ``"reference"`` forces the reference
            implementation, ``None`` runs ``algorithm`` exactly as given.
            Results are bit-identical whichever engine runs.
        config: framework configuration for distributed rounds; ``None`` runs the
            centralised baseline instead.
        executors: ids of the providers that execute the protocol; defaults to all
            ``num_providers`` sellers.  Figure 4 runs the protocol on the minimum
            2k+1 executors out of the m sellers, which this parameter models.
        latency_model / seed / measure_compute: simulation parameters.
    """

    def __init__(
        self,
        algorithm: AllocationAlgorithm,
        workload,
        num_providers: int = 8,
        engine: Optional[str] = DEFAULT_ENGINE,
        config: Optional[FrameworkConfig] = None,
        executors: Optional[Sequence[str]] = None,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
        measure_compute: bool = False,
    ) -> None:
        self.engine = engine
        self.algorithm = resolve_engine(algorithm, engine) if engine is not None else algorithm
        # If resolving created a fresh mechanism, this runner owns its resources
        # (the vectorized engine's pivot pool) and must release them on close().
        self._owns_algorithm = self.algorithm is not algorithm
        self.workload = workload
        self.num_providers = num_providers
        self.executors = list(executors) if executors is not None else None
        self.config = config
        self.latency_model = latency_model
        self.seed = seed
        self.measure_compute = measure_compute
        self._distributed: Optional[DistributedAuctioneer] = None
        self._centralized: Optional[CentralizedAuctioneer] = None

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources this runner created (idempotent).

        Mechanisms passed in pre-resolved stay untouched — their owner decides
        when to shut their pivot pool down.
        """
        if self._owns_algorithm:
            close = getattr(self.algorithm, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "BatchAuctionRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- amortised construction ---------------------------------------------------
    def provider_ids(self) -> List[str]:
        return default_provider_ids(self.num_providers)

    def _auctioneer(self) -> DistributedAuctioneer:
        if self._distributed is None:
            self._distributed = DistributedAuctioneer(
                self.algorithm,
                providers=self.executors if self.executors is not None else self.provider_ids(),
                config=self.config,
                latency_model=self.latency_model,
                seed=self.seed,
                measure_compute=self.measure_compute,
            )
        return self._distributed

    def _baseline(self) -> CentralizedAuctioneer:
        if self._centralized is None:
            self._centralized = CentralizedAuctioneer(self.algorithm, seed=self.seed)
        return self._centralized

    # -- execution ----------------------------------------------------------------
    def run_round(self, num_users: int, instance: int = 0) -> BatchRound:
        """Run one round on a fresh workload instance."""
        bids = self.workload.generate(
            num_users, self.num_providers, provider_ids=self.provider_ids(), instance=instance
        )
        if self.config is None:
            report = self._baseline().run(bids)
        else:
            report = self._auctioneer().run_from_bids(bids)
        return BatchRound(num_users=num_users, instance=instance, report=report)

    def run_batch(
        self,
        num_users: int,
        instances: Iterable[int],
    ) -> BatchSummary:
        """Run one round per instance id, sharing all amortised state."""
        summary = BatchSummary()
        for instance in instances:
            summary.rounds.append(self.run_round(num_users, instance))
        return summary

    def run_sweep(
        self,
        points: Sequence[Tuple[int, int]],
    ) -> Dict[Tuple[int, int], BatchRound]:
        """Run arbitrary ``(num_users, instance)`` points, e.g. a full figure sweep."""
        return {
            (num_users, instance): self.run_round(num_users, instance)
            for num_users, instance in points
        }
