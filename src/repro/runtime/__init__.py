"""End-to-end runtime roles: bidders submitting bids, providers collecting them.

The :mod:`repro.core` package assumes every provider already holds the bids it
received; this package adds the step before (and after) that: bidder nodes that send
their bids to all providers over the simulated network (possibly misbehaving — see
:mod:`repro.adversary`), provider nodes that collect bids until a deadline and
substitute ⊥ for missing ones, and an :class:`~repro.runtime.auction_run.AuctionRun`
orchestrator that wires a full round together, exactly as in Figure 1 of the paper:
bidders submit bids, providers simulate the auctioneer, bidders collect results.
"""

from repro.runtime.auction_run import AuctionRun, AuctionRunResult
from repro.runtime.batch import BatchAuctionRunner, BatchRound, BatchSummary
from repro.runtime.bidder import BidderNode, BidderStrategy, TruthfulBidder
from repro.runtime.provider import CollectingProviderNode

__all__ = [
    "AuctionRun",
    "AuctionRunResult",
    "BatchAuctionRunner",
    "BatchRound",
    "BatchSummary",
    "BidderNode",
    "BidderStrategy",
    "CollectingProviderNode",
    "TruthfulBidder",
]
