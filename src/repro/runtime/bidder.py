"""Bidder nodes: users (and, in double auctions, providers) that submit bids.

A bidder's behaviour is captured by a :class:`BidderStrategy`, which decides what to
send to each provider.  The honest strategy sends the true valuation everywhere;
adversarial strategies (different bids to different providers, garbage, silence) live
in :mod:`repro.adversary.bidder_behaviors` and implement the same interface.

After submitting, a bidder waits for the result announcements of the providers and
finishes with the outcome it can observe: the (x, p) pair if all providers announced
the same pair, and ⊥ otherwise — mirroring Definition 1 from the bidder's viewpoint.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Sequence

from repro.auctions.base import UserBid
from repro.common import ABORT, is_abort
from repro.core.outcome import combine_outputs
from repro.net.message import Message
from repro.net.node import Node, NodeContext

__all__ = ["BidderStrategy", "TruthfulBidder", "BidderNode", "BID_TAG", "RESULT_TAG"]

#: Tag used for bid submissions from bidders to providers.
BID_TAG = "submit_bid"
#: Tag used by providers to announce their output back to the bidders.
RESULT_TAG = "announce_result"


class BidderStrategy(abc.ABC):
    """Decides what a bidder sends to each provider."""

    @abc.abstractmethod
    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        """The payload to send to ``provider_id`` (None means send nothing)."""


class TruthfulBidder(BidderStrategy):
    """The honest strategy: the same, true bid to every provider."""

    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        return true_bid


class BidderNode(Node):
    """A user node that submits its bid to all providers and collects the result.

    Args:
        true_bid: the bidder's true valuation/demand.
        providers: ids of the provider nodes.
        strategy: submission behaviour (defaults to truthful).
        wait_for_result: if False, the bidder finishes right after submitting
            (useful when a scenario only cares about the providers' outputs).
    """

    def __init__(
        self,
        true_bid: UserBid,
        providers: Sequence[str],
        strategy: Optional[BidderStrategy] = None,
        wait_for_result: bool = True,
    ) -> None:
        super().__init__(true_bid.user_id)
        self.true_bid = true_bid
        self.providers = sorted(providers)
        self.strategy = strategy if strategy is not None else TruthfulBidder()
        self.wait_for_result = wait_for_result
        self._announcements: Dict[str, Any] = {}

    # -- Node interface ---------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        for provider_id in self.providers:
            payload = self.strategy.bid_for_provider(self.true_bid, provider_id)
            if payload is not None:
                ctx.send(provider_id, payload, tag=BID_TAG)
        if not self.wait_for_result:
            self.finish(None)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if message.tag != RESULT_TAG or message.sender not in self.providers:
            return
        self._announcements[message.sender] = message.payload
        if set(self._announcements) == set(self.providers):
            self.finish(combine_outputs(self._announcements))

    # -- observations ---------------------------------------------------------------
    @property
    def observed_outcome(self) -> Any:
        """What the bidder concluded (the agreed result, ⊥, or None if unfinished)."""
        return self.output if self.finished else None
