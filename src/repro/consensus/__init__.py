"""Rational-agent consensus substrate.

The bid-agreement block of the framework is built on the rational consensus protocol
of Afek et al. (PODC 2014): providers agree on a value that was the input of some
provider, and any detectable deviation leads the correct providers to output ⊥, which
(by solution preference) no rational coalition wants.

This package provides:

* :mod:`repro.consensus.commitment` — hash-based commit/reveal commitments, used by
  the common coin and by the committed variants of consensus.
* :mod:`repro.consensus.bit_encoding` — the bid ⇄ bit-stream encoding described in
  Section 4.1 of the paper (each bid is turned into a fixed-length stream of bits and
  each bit is agreed on by one binary consensus instance).
* :mod:`repro.consensus.rational_consensus` — a full-information broadcast/echo
  consensus block with equivocation detection; works for binary inputs (the paper's
  building block) and for values from any finite domain.
* :mod:`repro.consensus.multi_consensus` — a batched variant running many labelled
  instances over shared messages, used by the bid agreement in its efficient mode.
* :mod:`repro.consensus.leader_election` — commit/reveal leader election in the style
  of Abraham, Dolev and Halpern (DISC 2013).
"""

from repro.consensus.bit_encoding import (
    bits_to_bid,
    bits_to_value,
    bid_to_bits,
    value_to_bits,
)
from repro.consensus.commitment import Commitment, CommitmentScheme
from repro.consensus.leader_election import LeaderElectionBlock
from repro.consensus.multi_consensus import BatchedConsensusBlock
from repro.consensus.rational_consensus import BinaryConsensusBlock, RationalConsensusBlock

__all__ = [
    "BatchedConsensusBlock",
    "BinaryConsensusBlock",
    "Commitment",
    "CommitmentScheme",
    "LeaderElectionBlock",
    "RationalConsensusBlock",
    "bid_to_bits",
    "bits_to_bid",
    "bits_to_value",
    "value_to_bits",
]
