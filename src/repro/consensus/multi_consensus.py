"""Batched consensus: many labelled instances over shared messages.

Running one :class:`~repro.consensus.rational_consensus.RationalConsensusBlock` per
bidder (or per bit) is faithful to the paper's description but wasteful on the wire:
with ``n`` bidders and ``m`` providers it sends ``O(n·m²)`` small messages.  A real
deployment (and the paper's prototype, which finishes 1000-user auctions in under a
second over a WAN) batches the instances: each provider sends *one* message per peer
per round carrying the values for every label.

:class:`BatchedConsensusBlock` implements exactly the same two-round
broadcast/echo/decide structure as the single-instance block, but over a labelled
dictionary of inputs.  Per-label decisions use the same majority rule, so the batched
and per-instance modes agree on the output whenever both terminate (a property checked
by the test suite).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.common import ABORT
from repro.consensus.rational_consensus import majority_decision
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["BatchedConsensusBlock"]


class BatchedConsensusBlock(ProtocolBlock):
    """Agree on one value per label, using two batched rounds.

    Args:
        name: block name.
        my_inputs: mapping label -> this provider's input for that label.
        labels: the full set of labels every provider must cover; a received batch
            with a different label set is an observable deviation (⊥).
        validator: optional per-value predicate applied to every received value.
        round_timeout: virtual-time budget per round (``None`` waits forever,
            the reliable-substrate default).  With a timeout, a round that does
            not fill its quorum in time closes with the batches/echoes received
            so far — the block *terminates* instead of hanging on a crashed or
            partitioned peer, and sets :attr:`degraded` so the caller can
            surface the partial view.  Degraded decisions merge the received
            echoes label by label; a genuine conflict between views still
            outputs ⊥.
    """

    VALUE = "value"
    ECHO = "echo"
    TIMER_VALUE = "round/value"
    TIMER_ECHO = "round/echo"

    def __init__(
        self,
        name: str,
        my_inputs: Dict[str, Any],
        labels: Optional[list] = None,
        validator: Optional[Callable[[Any], bool]] = None,
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.my_inputs = dict(my_inputs)
        self.labels = sorted(my_inputs.keys()) if labels is None else sorted(labels)
        self.validator = validator
        self.round_timeout = round_timeout
        #: True when a round closed by timeout with a partial quorum.
        self.degraded = False
        self._batches: Dict[str, Dict[str, Any]] = {}
        self._echoes: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._echo_sent = False

    # -- helpers -----------------------------------------------------------------
    def _valid_batch(self, batch: Any) -> bool:
        if not isinstance(batch, dict):
            return False
        if sorted(batch.keys()) != self.labels:
            return False
        if self.validator is not None:
            return all(self.validator(value) for value in batch.values())
        return True

    # -- protocol -----------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        if not self._valid_batch(self.my_inputs):
            self.complete(ABORT)
            return
        self._batches[ctx.node_id] = dict(self.my_inputs)
        ctx.broadcast(dict(self.my_inputs), subtag=self.VALUE)
        if self.round_timeout is not None:
            ctx.set_timer(self.round_timeout, self.TIMER_VALUE)
        self._maybe_echo(ctx)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done or sender not in ctx.participants:
            return
        if subtag == self.VALUE:
            self._on_value(ctx, sender, payload)
        elif subtag == self.ECHO:
            self._on_echo(ctx, sender, payload)

    def _on_value(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if sender in self._batches:
            if self._batches[sender] != payload:
                self.complete(ABORT)
            return
        if not self._valid_batch(payload):
            self.complete(ABORT)
            return
        self._batches[sender] = dict(payload)
        self._maybe_echo(ctx)

    def _maybe_echo(self, ctx: BlockContext, force: bool = False) -> None:
        if self._echo_sent or self.done:
            return
        if not force and set(self._batches) != set(ctx.participants):
            return
        self._echo_sent = True
        snapshot = {provider: dict(batch) for provider, batch in self._batches.items()}
        ctx.broadcast(snapshot, subtag=self.ECHO)
        self._echoes[ctx.node_id] = snapshot
        if self.round_timeout is not None:
            ctx.set_timer(self.round_timeout, self.TIMER_ECHO)
        self._maybe_decide(ctx)

    def _on_echo(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if not isinstance(payload, dict):
            self.complete(ABORT)
            return
        if sender in self._echoes:
            if self._echoes[sender] != payload:
                self.complete(ABORT)
            return
        self._echoes[sender] = payload
        self._maybe_decide(ctx)

    # -- timeout quorum ----------------------------------------------------------
    def on_timer(self, ctx: BlockContext, subtag: str) -> None:
        if self.done:
            return
        if subtag == self.TIMER_VALUE and not self._echo_sent:
            # The value round ran out of budget: echo what we have.
            self.degraded = True
            self._maybe_echo(ctx, force=True)
        elif subtag == self.TIMER_ECHO and self._echo_sent:
            # The echo round ran out of budget: decide over the echoes we have.
            self.degraded = True
            self._maybe_decide(ctx, force=True)

    def _maybe_decide(self, ctx: BlockContext, force: bool = False) -> None:
        if self.done or not self._echo_sent:
            return
        if set(self._echoes) != set(ctx.participants):
            if not force:
                return
            self.degraded = True
        if self.round_timeout is not None:
            # Timeout-quorum mode merges the received echoes label by label:
            # identical full views decide exactly as the strict path below,
            # partial views still terminate, and a genuine conflict is ⊥.
            self._decide_merged(ctx)
            return
        reference = self._echoes[ctx.node_id]
        for echo in self._echoes.values():
            if echo != reference:
                # Two providers hold different views of the first round: someone
                # equivocated, so the correct output is ⊥.
                self.complete(ABORT)
                return
        decisions: Dict[str, Any] = {}
        for label in self.labels:
            per_provider = {
                provider: batch[label] for provider, batch in reference.items()
            }
            decisions[label] = majority_decision(per_provider)
        self.complete(decisions)

    def _decide_merged(self, ctx: BlockContext) -> None:
        """Decide from the union of the received echo views (timeout mode only)."""
        merged: Dict[str, Dict[str, Any]] = {}
        for echo in self._echoes.values():
            for provider, batch in echo.items():
                if not isinstance(batch, dict) or sorted(batch.keys()) != self.labels:
                    self.complete(ABORT)  # malformed view: observable deviation
                    return
                known = merged.get(provider)
                if known is None:
                    merged[provider] = dict(batch)
                elif known != batch:
                    # Two views disagree about the same provider's first-round
                    # batch: someone equivocated, the correct output is ⊥.
                    self.complete(ABORT)
                    return
        if not merged:
            self.complete(ABORT)
            return
        if set(merged) != set(ctx.participants):
            self.degraded = True  # deciding without some provider's batch
        decisions: Dict[str, Any] = {}
        for label in self.labels:
            per_provider = {provider: batch[label] for provider, batch in merged.items()}
            decisions[label] = majority_decision(per_provider)
        self.complete(decisions)
