"""Hash-based commitments.

The common coin of the framework (Section 4.2) requires every provider to *commit* to
a random number before learning anybody else's, and later *reveal* it; a provider that
reveals a value inconsistent with its commitment is detected and the block aborts.
We implement the standard hash commitment: ``digest = H(canonical(value) || nonce)``
with a random nonce to make the commitment hiding for low-entropy values.

SHA-256 is used through :mod:`hashlib`; in the rational (non-cryptographic-adversary)
model of the paper this is more than sufficient — the point is detectability of
deviations, not resistance to unbounded adversaries.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any

from repro.net.serialization import canonical_encode

__all__ = ["Commitment", "CommitmentScheme", "CommitmentError"]

_NONCE_BYTES = 16


class CommitmentError(ValueError):
    """Raised when an opening does not match its commitment."""


@dataclass(frozen=True)
class Commitment:
    """A binding, hiding commitment to a value.

    Attributes:
        digest: hex-encoded SHA-256 digest of ``canonical(value) || nonce``.
    """

    digest: str

    def verify(self, value: Any, nonce: bytes) -> bool:
        """True if ``(value, nonce)`` opens this commitment."""
        return CommitmentScheme.digest_of(value, nonce) == self.digest


class CommitmentScheme:
    """Factory for commitments and their openings."""

    @staticmethod
    def digest_of(value: Any, nonce: bytes) -> str:
        hasher = hashlib.sha256()
        hasher.update(canonical_encode(value))
        hasher.update(bytes(nonce))
        return hasher.hexdigest()

    @staticmethod
    def commit(value: Any, rng: random.Random) -> tuple[Commitment, bytes]:
        """Commit to ``value``; returns the commitment and the nonce to keep secret."""
        nonce = rng.getrandbits(_NONCE_BYTES * 8).to_bytes(_NONCE_BYTES, "big")
        return Commitment(CommitmentScheme.digest_of(value, nonce)), nonce

    @staticmethod
    def open(commitment: Commitment, value: Any, nonce: bytes) -> Any:
        """Verify an opening, returning the value or raising :class:`CommitmentError`."""
        if not commitment.verify(value, nonce):
            raise CommitmentError("opening does not match commitment")
        return value
