"""Rational consensus (full-information broadcast/echo with equivocation detection).

The framework's bid agreement builds on the rational consensus abstraction of Afek et
al. (PODC 2014): a protocol among ``m`` providers with the guarantees

1. if all providers follow the protocol, then they all eventually output the same
   value, and that value was the *input of some provider*; and
2. the protocol is a k-resilient equilibrium under *solution preference* (providers
   prefer any agreed valid outcome over ⊥) and ``m > 2k``.

We implement the full-information variant:

* **value round** — every provider broadcasts its input to all participants;
* **echo round** — once a provider has collected a value from every participant it
  broadcasts the collected vector;
* **decision** — when all echo vectors have been received the provider checks that
  every peer reported the *same* value vector (any mismatch means some provider
  equivocated, and the correct response under solution preference is to output ⊥);
  if consistent, the decision is the *majority* input, with ties broken towards the
  value of the lexicographically smallest provider id holding a majority value.

The decision rule makes the output the input of some provider (condition 1) and is a
symmetric function of the agreed vector, so all correct providers decide identically.
Deviations that are observable (equivocation, malformed values) lead to ⊥; deviations
that are not observable (lying about one's own input) cannot increase the deviator's
utility because the allocator's input-validation step forces all providers to input
the same agreed vector (see Theorem 1 in the paper and DESIGN.md).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Hashable, Optional

from repro.common import ABORT
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["RationalConsensusBlock", "BinaryConsensusBlock", "majority_decision"]


def majority_decision(values: Dict[str, Any]) -> Any:
    """Deterministic symmetric decision rule over a provider->value mapping.

    Returns the most frequent value; ties are broken in favour of the value proposed
    by the smallest provider id among the tied values.  Unhashable values are
    compared by repr for counting purposes (protocol payloads are plain data, so this
    is only a defensive fallback).
    """
    if not values:
        raise ValueError("cannot decide over an empty value set")

    def key_of(value: Any) -> Hashable:
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)

    counts: Counter = Counter(key_of(v) for v in values.values())
    best_count = max(counts.values())
    tied_keys = {key for key, count in counts.items() if count == best_count}
    for provider_id in sorted(values):
        if key_of(values[provider_id]) in tied_keys:
            return values[provider_id]
    raise AssertionError("unreachable: some provider must hold a tied value")


class RationalConsensusBlock(ProtocolBlock):
    """Single-shot consensus over values from an arbitrary (finite) domain.

    Args:
        name: block name (used for tag namespacing by the host).
        my_input: this provider's input value.
        validator: optional predicate; a received input that fails validation is
            treated as an observable deviation and leads to ⊥.
    """

    VALUE = "value"
    ECHO = "echo"

    def __init__(
        self,
        name: str,
        my_input: Any,
        validator: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        super().__init__(name)
        self.my_input = my_input
        self.validator = validator
        self._values: Dict[str, Any] = {}
        self._echoes: Dict[str, Dict[str, Any]] = {}
        self._echo_sent = False

    # -- protocol ---------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        if self.validator is not None and not self.validator(self.my_input):
            # A correct provider never has an invalid input; treat as local fault.
            self.complete(ABORT)
            return
        self._values[ctx.node_id] = self.my_input
        ctx.broadcast(self.my_input, subtag=self.VALUE)
        self._maybe_echo(ctx)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done:
            return
        if sender not in ctx.participants:
            return
        if subtag == self.VALUE:
            self._on_value(ctx, sender, payload)
        elif subtag == self.ECHO:
            self._on_echo(ctx, sender, payload)

    # -- rounds ----------------------------------------------------------------
    def _on_value(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if sender in self._values:
            # Duplicate value message from the same provider: equivocation.
            if self._values[sender] != payload:
                self.complete(ABORT)
            return
        if self.validator is not None and not self.validator(payload):
            self.complete(ABORT)
            return
        self._values[sender] = payload
        self._maybe_echo(ctx)

    def _maybe_echo(self, ctx: BlockContext) -> None:
        if self._echo_sent or self.done:
            return
        if set(self._values) != set(ctx.participants):
            return
        self._echo_sent = True
        snapshot = dict(self._values)
        ctx.broadcast(snapshot, subtag=self.ECHO)
        self._echoes[ctx.node_id] = snapshot
        self._maybe_decide(ctx)

    def _on_echo(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if not isinstance(payload, dict):
            self.complete(ABORT)
            return
        if sender in self._echoes:
            if self._echoes[sender] != payload:
                self.complete(ABORT)
            return
        self._echoes[sender] = dict(payload)
        self._maybe_decide(ctx)

    def _maybe_decide(self, ctx: BlockContext) -> None:
        if self.done or not self._echo_sent:
            return
        if set(self._echoes) != set(ctx.participants):
            return
        reference = self._echoes[ctx.node_id]
        for echo in self._echoes.values():
            if set(echo) != set(reference):
                self.complete(ABORT)
                return
            for provider_id, value in reference.items():
                if echo.get(provider_id) != value:
                    # Some provider equivocated about its input.
                    self.complete(ABORT)
                    return
        self.complete(majority_decision(reference))


class BinaryConsensusBlock(RationalConsensusBlock):
    """The paper's binary building block: inputs restricted to {0, 1}."""

    def __init__(self, name: str, my_input: int) -> None:
        super().__init__(name, my_input, validator=lambda value: value in (0, 1))
