"""Commit/reveal leader election (Abraham–Dolev–Halpern style).

Although the distributed auctioneer does not strictly need a leader, leader election
is the canonical k-resilient building block of the literature the paper builds on
(Abraham, Dolev, Halpern; DISC 2013) and is provided here both as a reusable block and
as the simplest exercise of the commit/reveal machinery shared with the common coin.

Every provider commits to a uniformly random integer, reveals it once all commitments
are in, and the leader is the participant with rank ``sum(values) mod m`` in the
sorted participant list.  A provider that reveals a value inconsistent with its
commitment — or never commits a fresh random value and tries to bias the outcome after
seeing others — is detected and the block outputs ⊥.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common import ABORT
from repro.consensus.commitment import Commitment, CommitmentScheme
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["LeaderElectionBlock"]

_RANDOM_BITS = 62


class LeaderElectionBlock(ProtocolBlock):
    """Elect a uniformly random leader among the participants."""

    COMMIT = "commit"
    REVEAL = "reveal"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._my_value: int = 0
        self._my_nonce: bytes = b""
        self._commitments: Dict[str, Commitment] = {}
        self._reveals: Dict[str, int] = {}
        self._pending_reveals: Dict[str, Any] = {}
        self._revealed = False

    def on_start(self, ctx: BlockContext) -> None:
        self._my_value = ctx.rng.getrandbits(_RANDOM_BITS)
        commitment, nonce = CommitmentScheme.commit(self._my_value, ctx.rng)
        self._my_nonce = nonce
        self._commitments[ctx.node_id] = commitment
        ctx.broadcast(commitment.digest, subtag=self.COMMIT)
        self._maybe_reveal(ctx)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done or sender not in ctx.participants:
            return
        if subtag == self.COMMIT:
            self._on_commit(ctx, sender, payload)
        elif subtag == self.REVEAL:
            self._on_reveal(ctx, sender, payload)

    def _on_commit(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if sender in self._commitments:
            if self._commitments[sender].digest != payload:
                self.complete(ABORT)
            return
        if not isinstance(payload, str):
            self.complete(ABORT)
            return
        self._commitments[sender] = Commitment(payload)
        if sender in self._pending_reveals:
            # A reveal raced ahead of its commit (asynchrony); process it now.
            self._on_reveal(ctx, sender, self._pending_reveals.pop(sender))
            if self.done:
                return
        self._maybe_reveal(ctx)

    def _maybe_reveal(self, ctx: BlockContext) -> None:
        if self._revealed or self.done:
            return
        if set(self._commitments) != set(ctx.participants):
            return
        self._revealed = True
        ctx.broadcast((self._my_value, self._my_nonce), subtag=self.REVEAL)
        self._reveals[ctx.node_id] = self._my_value
        self._maybe_decide(ctx)

    def _on_reveal(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        commitment = self._commitments.get(sender)
        if commitment is None:
            # The reveal overtook its commit on the wire (channels are reliable but
            # not ordered).  Buffer it; it is re-processed when the commit arrives.
            self._pending_reveals[sender] = payload
            return
        try:
            value, nonce = payload
        except (TypeError, ValueError):
            self.complete(ABORT)
            return
        if not isinstance(value, int) or value < 0 or value >= (1 << _RANDOM_BITS):
            self.complete(ABORT)
            return
        if not commitment.verify(value, bytes(nonce)):
            self.complete(ABORT)
            return
        if sender in self._reveals:
            if self._reveals[sender] != value:
                self.complete(ABORT)
            return
        self._reveals[sender] = value
        self._maybe_decide(ctx)

    def _maybe_decide(self, ctx: BlockContext) -> None:
        if self.done or not self._revealed:
            return
        if set(self._reveals) != set(ctx.participants):
            return
        total = sum(self._reveals.values())
        ordered = sorted(ctx.participants)
        self.complete(ordered[total % len(ordered)])
