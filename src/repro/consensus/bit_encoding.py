"""Bid ⇄ bit-stream encoding.

Section 4.1 of the paper implements bid agreement by having each provider generate,
for every bidder, "a stream of bits uniquely determined from the bid" and running one
binary rational-consensus instance per bit.  This module provides that encoding:

* a *generic* encoding of any canonically-encodable value into bits (length-prefixed
  canonical bytes), and
* a *fixed-width* encoding specialised for bandwidth-auction user bids (unit value and
  demand as 64-bit IEEE-754 doubles), which is what the per-bit bid-agreement mode
  uses because every provider must a-priori know how many consensus instances to run.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence

from repro.net.serialization import canonical_encode

__all__ = [
    "value_to_bits",
    "bits_to_value",
    "bid_to_bits",
    "bits_to_bid",
    "BID_BIT_LENGTH",
]

#: Number of bits in the fixed-width encoding of a user bid (two float64 fields).
BID_BIT_LENGTH = 128


def _bytes_to_bits(data: bytes) -> List[int]:
    bits: List[int] = []
    for byte in data:
        for position in range(7, -1, -1):
            bits.append((byte >> position) & 1)
    return bits


def _bits_to_bytes(bits: Sequence[int]) -> bytes:
    if len(bits) % 8 != 0:
        raise ValueError("bit stream length must be a multiple of 8")
    out = bytearray()
    for index in range(0, len(bits), 8):
        byte = 0
        for bit in bits[index : index + 8]:
            if bit not in (0, 1):
                raise ValueError(f"invalid bit {bit!r}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def value_to_bits(value: Any) -> List[int]:
    """Encode an arbitrary canonically-encodable value as a list of bits."""
    return _bytes_to_bits(canonical_encode(value))


def bits_to_value(bits: Sequence[int]) -> bytes:
    """Inverse of :func:`value_to_bits` up to the byte level.

    Canonical encoding is not meant to be decoded back into Python objects in
    general; for the protocols we only ever need byte-level equality, so this
    returns the reassembled bytes.
    """
    return _bits_to_bytes(bits)


def bid_to_bits(unit_value: float, demand: float) -> List[int]:
    """Fixed-width (128-bit) encoding of a user bid's two numeric fields."""
    data = struct.pack(">dd", float(unit_value), float(demand))
    bits = _bytes_to_bits(data)
    assert len(bits) == BID_BIT_LENGTH
    return bits


def bits_to_bid(bits: Sequence[int]) -> tuple[float, float]:
    """Decode the fixed-width encoding back into ``(unit_value, demand)``."""
    if len(bits) != BID_BIT_LENGTH:
        raise ValueError(f"expected {BID_BIT_LENGTH} bits, got {len(bits)}")
    unit_value, demand = struct.unpack(">dd", _bits_to_bytes(bits))
    return unit_value, demand
