"""Standard auction: approximately-optimal allocation with VCG payments (§5.2.2).

The paper instantiates its framework with the mechanism of Zhang, Wu, Li and Lau
("A Truthful (1−ε)-Optimal Mechanism for On-demand Cloud Resource Provisioning",
INFOCOM 2015): users do not split their demand — each user's bandwidth request is
served entirely by a single provider or not at all — providers do not bid, and the
mechanism aims at truthfulness, (approximately) maximal social welfare and polynomial
running time.  Welfare maximisation under the single-provider constraint is the
multiple-knapsack problem, which is NP-hard; the original algorithm is a randomised
(1−ε)-approximation with complexity ≈ O(m·n⁹·(1/ε)²).

This module implements a *substitute with the same computational and game-theoretic
shape* (see DESIGN.md):

* the allocation rule is a randomised smoothed greedy over value-density orders with
  ``restarts ≈ (1/ε)²`` independent perturbations followed by a pairwise local-search
  improvement — expensive, randomised, and tunable via ``epsilon`` exactly like the
  original's accuracy/effort knob;
* payments are Clarke pivots: each winner's payment requires re-solving the allocation
  without that winner, which is the per-user, embarrassingly parallel "Task 2" of
  Algorithm 1 in the paper;
* all randomness is derived deterministically from an integer seed, so independent
  provider groups recomputing any piece of the mechanism obtain identical results
  (a requirement of the data-transfer block's consistency checks).

The class implements :class:`~repro.auctions.decomposable.DecomposableMechanism`, so
the parallel allocator can split the payment phase across provider groups.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import stable_hash
from repro.auctions.base import (
    Allocation,
    AllocationAlgorithm,
    AuctionResult,
    BidVector,
    Payments,
    UserBid,
)
from repro.auctions.decomposable import DecomposableMechanism
from repro.auctions.payments import clarke_pivot_payments
from repro.auctions.validation import is_valid_user_bid

__all__ = ["StandardAuction"]

_EPS = 1e-12


class StandardAuction(AllocationAlgorithm, DecomposableMechanism):
    """Truthful-in-expectation, approximately welfare-maximising standard auction.

    Args:
        epsilon: accuracy/effort knob.  The number of randomised restarts of the
            allocation rule is ``ceil(1/epsilon**2)`` (clamped to
            ``[min_restarts, max_restarts]``), mirroring the (1/ε)² factor in the
            complexity of the original mechanism.  Smaller ε ⇒ better welfare and
            more computation.
        perturbation: relative magnitude of the smoothing noise applied to bid values
            when building each randomised greedy order.
        local_search_rounds: number of improvement passes (relocation of losers into
            residual capacity) applied to each restart's solution.
        min_restarts / max_restarts: clamps for the restart count.
    """

    name = "standard-auction-smoothed-vcg"
    requires_provider_bids = False
    single_provider_allocation = True

    def __init__(
        self,
        epsilon: float = 0.25,
        perturbation: float = 0.05,
        local_search_rounds: int = 1,
        min_restarts: int = 4,
        max_restarts: int = 512,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 <= perturbation < 1:
            raise ValueError("perturbation must be in [0, 1)")
        self.epsilon = epsilon
        self.perturbation = perturbation
        self.local_search_rounds = local_search_rounds
        self.restarts = max(min_restarts, min(max_restarts, int(round(1.0 / epsilon**2))))

    # ------------------------------------------------------------------ run --
    def run(self, bids: BidVector, rng: Optional[random.Random] = None) -> AuctionResult:
        rng = rng if rng is not None else random.Random(0)
        seed = rng.getrandbits(63)
        allocation, welfare = self.solve_allocation(bids, seed)
        payments = self.payments_for_users(
            bids, bids.user_ids, allocation, welfare, seed
        )
        return self.assemble(bids, allocation, payments)

    # ------------------------------------------- DecomposableMechanism API --
    @staticmethod
    def eligible_users(bids: BidVector) -> List[UserBid]:
        """The users that can participate in the allocation, in bid-vector order.

        Shared by both engines: the vectorized kernel must filter identically or
        the engines' results (and the providers recomputing them) diverge.
        """
        return [
            bid for bid in bids.users
            if is_valid_user_bid(bid) and bid.unit_value > 0 and bid.demand > _EPS
        ]

    @staticmethod
    def eligible_capacities(bids: BidVector) -> Dict[str, float]:
        """Provider capacities that can host anything, in bid-vector order (shared)."""
        return {p.provider_id: p.capacity for p in bids.providers if p.capacity > _EPS}

    @staticmethod
    def allocation_from_assignment(
        users: List[UserBid], assignment: Dict[str, str]
    ) -> Allocation:
        """Materialise the winning assignment as an all-or-nothing allocation (shared)."""
        return Allocation.from_dict(
            {
                (user.user_id, provider_id): user.demand
                for user in users
                for provider_id in [assignment.get(user.user_id)]
                if provider_id is not None
            }
        )

    def solve_allocation(self, bids: BidVector, seed: int) -> Tuple[Allocation, float]:
        """Step 1: randomised smoothed greedy + local search over the full bid vector."""
        users = self.eligible_users(bids)
        capacities = self.eligible_capacities(bids)
        if not users or not capacities:
            return Allocation.empty(), 0.0

        best_assignment: Dict[str, str] = {}
        best_welfare = -1.0
        for restart in range(self.restarts):
            restart_rng = random.Random(stable_hash(seed, "restart", restart))
            assignment = self._greedy_assignment(users, dict(capacities), restart_rng)
            assignment = self._local_search(users, capacities, assignment)
            welfare = self._assignment_welfare(users, assignment)
            if welfare > best_welfare + _EPS:
                best_welfare = welfare
                best_assignment = assignment
        allocation = self.allocation_from_assignment(users, best_assignment)
        return allocation, max(best_welfare, 0.0)

    def payments_for_users(
        self,
        bids: BidVector,
        user_ids: Sequence[str],
        allocation: Allocation,
        welfare: float,
        seed: int,
    ) -> Dict[str, float]:
        """Step 2: Clarke pivots for a subset of users (one re-solve per winner).

        Because the allocation rule is approximate, the pivot re-solve can occasionally
        find a *better* solution than the one actually chosen, which would make the raw
        Clarke payment exceed the winner's declared value.  Payments are therefore
        clamped to the declared value of the allocated bundle, which restores
        individual rationality (a standard fix for approximate-VCG mechanisms) at a
        negligible cost in truthfulness.

        The re-solves themselves go through :meth:`_pivot_welfares`, the hook the
        vectorized engine overrides to run them through a pool with memoisation.
        """
        winners = set(allocation.winners())
        pivot_welfares = self._pivot_welfares(
            bids, [uid for uid in user_ids if uid in winners], seed
        )

        def welfare_without(user_id: str) -> float:
            # Total over all users, like the pre-batching closure: the prefetch
            # above covers every user clarke_pivot_payments asks about today,
            # but a miss falls back to a single re-solve instead of a KeyError.
            if user_id in pivot_welfares:
                return pivot_welfares[user_id]
            return self._pivot_welfares(bids, [user_id], seed)[user_id]

        payments = clarke_pivot_payments(bids, allocation, user_ids, welfare_without)
        clamped: Dict[str, float] = {}
        for user_id, payment in payments.items():
            allocated_value = bids.user(user_id).unit_value * allocation.user_total(user_id)
            clamped[user_id] = min(payment, allocated_value)
        return clamped

    def _pivot_welfares(
        self, bids: BidVector, user_ids: Sequence[str], seed: int
    ) -> Dict[str, float]:
        """Welfare of the re-solved allocation without each user (one re-solve each)."""
        welfares: Dict[str, float] = {}
        for user_id in user_ids:
            reduced = bids.without_user(user_id)
            _, pivot_welfare = self.solve_allocation(reduced, self._pivot_seed(seed, user_id))
            welfares[user_id] = pivot_welfare
        return welfares

    def assemble(
        self,
        bids: BidVector,
        allocation: Allocation,
        user_payments: Dict[str, float],
    ) -> AuctionResult:
        """Step 3: attach payments; provider revenues are the payments of their users."""
        provider_revenues: Dict[str, float] = {}
        for user_id, provider_id, _amount in allocation.entries:
            payment = user_payments.get(user_id, 0.0)
            provider_revenues[provider_id] = provider_revenues.get(provider_id, 0.0) + payment
        return AuctionResult(
            allocation, Payments.from_dicts(user_payments, provider_revenues)
        )

    # ---------------------------------------------------------------- pieces --
    @staticmethod
    def _pivot_seed(seed: int, user_id: str) -> int:
        """Deterministic per-user seed for the pivot re-solve (same on all providers)."""
        return stable_hash(seed, "pivot", user_id)

    def _greedy_assignment(
        self,
        users: List[UserBid],
        capacities: Dict[str, float],
        rng: random.Random,
    ) -> Dict[str, str]:
        """Best-fit decreasing over a smoothed value-density order."""
        def smoothed_density(user: UserBid) -> float:
            noise = 1.0 + self.perturbation * (2.0 * rng.random() - 1.0)
            return user.unit_value * noise

        order = sorted(
            users, key=lambda u: (-smoothed_density(u), u.user_id)
        )
        assignment: Dict[str, str] = {}
        remaining = dict(capacities)
        for user in order:
            # Best fit: the provider with the least remaining capacity that still fits,
            # which keeps large residuals available for large future demands.
            candidates = [
                (remaining[pid], pid)
                for pid in remaining
                if remaining[pid] + _EPS >= user.demand
            ]
            if not candidates:
                continue
            _, chosen = min(candidates)
            assignment[user.user_id] = chosen
            remaining[chosen] -= user.demand
        return assignment

    def _local_search(
        self,
        users: List[UserBid],
        capacities: Dict[str, float],
        assignment: Dict[str, str],
    ) -> Dict[str, str]:
        """Try to place losers into residual capacity, possibly evicting cheaper winners."""
        assignment = dict(assignment)
        users_by_id = {u.user_id: u for u in users}
        for _ in range(max(0, self.local_search_rounds)):
            remaining = dict(capacities)
            for user_id, provider_id in assignment.items():
                remaining[provider_id] -= users_by_id[user_id].demand
            improved = False
            losers = [u for u in users if u.user_id not in assignment]
            losers.sort(key=lambda u: (-u.total_value, u.user_id))
            for loser in losers:
                # Direct placement into residual capacity.
                fits = [pid for pid, cap in remaining.items() if cap + _EPS >= loser.demand]
                if fits:
                    chosen = min(fits, key=lambda pid: remaining[pid])
                    assignment[loser.user_id] = chosen
                    remaining[chosen] -= loser.demand
                    improved = True
                    continue
                # Eviction: replace a strictly lower-value winner if the swap fits.
                for winner_id, provider_id in list(assignment.items()):
                    winner = users_by_id[winner_id]
                    if winner.total_value + _EPS >= loser.total_value:
                        continue
                    freed = remaining[provider_id] + winner.demand
                    if freed + _EPS >= loser.demand:
                        del assignment[winner_id]
                        assignment[loser.user_id] = provider_id
                        remaining[provider_id] = freed - loser.demand
                        improved = True
                        break
            if not improved:
                break
        return assignment

    @staticmethod
    def _assignment_welfare(users: List[UserBid], assignment: Dict[str, str]) -> float:
        users_by_id = {u.user_id: u for u in users}
        return sum(users_by_id[uid].total_value for uid in assignment)
