"""Parallel, memoised execution of the Clarke-pivot payment re-solves.

Clarke payments are the "Task 2" of Algorithm 1: one full allocation re-solve per
winner, each on the bid vector with that winner removed.  The re-solves are pure
functions of ``(mechanism parameters, reduced bid vector, pivot seed)``, which
makes them both embarrassingly parallel and highly cacheable:

* inside one distributed simulation every provider of a group recomputes the same
  payment task (that is how the framework tolerates coalitions), so a process-wide
  memo keyed on ``(reduced-bid-vector hash, seed)`` collapses the k+1 replicated
  computations into one;
* across rounds of a batch workload (:class:`repro.runtime.batch.BatchAuctionRunner`)
  repeated instances hit the same cache.

:class:`PivotExecutor` submits the cache misses to a ``concurrent.futures`` pool
("thread" or "process") or runs them inline ("serial").  Results are merged by
user id, so execution order — and therefore parallelism — cannot affect the
outcome; determinism only depends on each re-solve's own seed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from repro.auctions.base import Allocation, BidVector
from repro.common import available_cpus, stable_hash
from repro.obs.context import current_observation

__all__ = ["PivotExecutor", "SolveCache", "clear_solve_cache", "shared_solve_cache"]

#: Key of a memoised solve: (mechanism fingerprint, bid-vector hash, seed).
SolveKey = Tuple[Tuple[int, float, int], int, int]


class SolveCache:
    """A small thread-safe LRU for ``solve_allocation`` results.

    Values are ``(Allocation, welfare)`` pairs — immutable and tiny — so a few
    thousand entries cost little memory while absorbing both the per-group
    replication of payment tasks and repeated rounds of batch workloads.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[SolveKey, Tuple[Allocation, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: SolveKey) -> Optional[Tuple[Allocation, float]]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: SolveKey, value: Tuple[Allocation, float]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide cache shared by every vectorized mechanism instance.
_SHARED_CACHE = SolveCache()


def shared_solve_cache() -> SolveCache:
    """The process-wide solve memo (one per Python process; workers have their own)."""
    return _SHARED_CACHE


def clear_solve_cache() -> None:
    """Drop all memoised solves (tests use this to measure cold-cache behaviour)."""
    _SHARED_CACHE.clear()


def bid_vector_fingerprint(bids: BidVector) -> int:
    """Deterministic hash of a bid vector (exact: built from float ``repr``s)."""
    return stable_hash(
        tuple((u.user_id, u.unit_value, u.demand) for u in bids.users),
        tuple((p.provider_id, p.unit_cost, p.capacity) for p in bids.providers),
    )


def _solve_in_worker(params: Tuple[int, float, int], bids: BidVector, seed: int):
    """Process-pool entry point: rebuild a vectorized mechanism and solve.

    Module-level so it pickles; imports locally to avoid an import cycle with
    :mod:`repro.auctions.engine.vectorized`.
    """
    from repro.auctions.engine.vectorized import VectorizedStandardAuction

    restarts, perturbation, local_search_rounds = params
    mechanism = VectorizedStandardAuction(
        perturbation=perturbation, local_search_rounds=local_search_rounds
    )
    mechanism.restarts = int(restarts)
    return mechanism.solve_allocation(bids, seed)


class PivotExecutor:
    """Runs per-winner pivot re-solves through a pool, with the shared memo in front.

    Args:
        mode: ``"serial"`` (inline), ``"thread"``, ``"process"``, or ``"auto"`` —
            which picks ``"thread"`` on multi-core hosts and ``"serial"`` on
            single-core ones, where a pool only adds scheduling overhead.
            Core counting is affinity-aware
            (:func:`repro.common.available_cpus`): a cpuset-restricted
            container counts the CPUs it may run on, not the machine's.
        max_workers: pool size (default: ``concurrent.futures``' own default).

    The pool is created lazily and reused across calls, so one executor can be
    shared by every provider node of a simulation and by every round of a batch
    run — that sharing is where the amortisation comes from.
    """

    def __init__(self, mode: str = "auto", max_workers: Optional[int] = None) -> None:
        if mode == "auto":
            # Affinity-aware: a container pinned to one core of a many-core
            # host must resolve to "serial", whatever os.cpu_count() says.
            mode = "thread" if available_cpus() > 1 else "serial"
        if mode not in ("serial", "thread", "process"):
            raise ValueError(f"unknown pivot executor mode {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        self._pool: Optional[Executor] = None
        self._lock = threading.Lock()

    # -- pool lifecycle ---------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._pool is None:
                if self.mode == "thread":
                    self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def __enter__(self) -> "PivotExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- the work ---------------------------------------------------------------
    def pivot_welfares(
        self,
        mechanism,
        bids: BidVector,
        user_ids: Sequence[str],
        seed: int,
    ) -> Dict[str, float]:
        """Welfare of the re-solved allocation without each user in ``user_ids``.

        ``mechanism`` must be a vectorized standard auction (it provides the
        parameters, the per-user pivot seed derivation and the memoised solver).
        """
        cache = shared_solve_cache()
        params = mechanism.engine_params()
        # A reduced vector is a pure function of (bids, removed user), so its cache
        # key can be derived from the base fingerprint — hashing the base vector
        # once instead of re-hashing a near-copy per winner, and the (frequent,
        # across provider replicas) cache-hit path never materialises the reduced
        # vector at all.
        base_fingerprint = bid_vector_fingerprint(bids)
        jobs = []  # (user_id, key, pivot seed) for cache misses
        welfares: Dict[str, float] = {}
        for user_id in user_ids:
            pivot_seed = mechanism._pivot_seed(seed, user_id)
            key: SolveKey = (
                params,
                stable_hash(base_fingerprint, "without", user_id),
                pivot_seed,
            )
            hit = cache.get(key)
            if hit is not None:
                welfares[user_id] = hit[1]
            else:
                jobs.append((user_id, key, pivot_seed))

        # Observability hook: one "pivot_resolve" span per batch, emitted on
        # the calling thread before any pool fan-out so the span order is the
        # same under serial, thread and process executors.  Engine work has no
        # sim clock, so the timestamp is the tracer's logical sequence.
        obs = current_observation()
        if obs is not None and obs.tracer is not None and obs.tracer.active:
            obs.tracer.emit(
                "pivot_resolve",
                "engine",
                ts=obs.tracer.seq(),
                dur=float(max(len(jobs), 1)),
                users=len(user_ids),
                resolves=len(jobs),
                memo_hits=len(user_ids) - len(jobs),
            )

        if not jobs:
            return welfares
        if self.mode == "serial":
            for user_id, key, pivot_seed in jobs:
                welfares[user_id] = mechanism._solve_cached(
                    bids.without_user(user_id), pivot_seed, key
                )[1]
            return welfares

        pool = self._ensure_pool()
        if self.mode == "thread":
            futures = [
                pool.submit(
                    mechanism._solve_cached, bids.without_user(user_id), pivot_seed, key
                )
                for user_id, key, pivot_seed in jobs
            ]
            for (user_id, _key, _pivot_seed), future in zip(jobs, futures):
                welfares[user_id] = future.result()[1]
        else:
            futures = [
                pool.submit(_solve_in_worker, params, bids.without_user(user_id), pivot_seed)
                for user_id, key, pivot_seed in jobs
            ]
            for (user_id, key, _pivot_seed), future in zip(jobs, futures):
                allocation, welfare = future.result()
                cache.put(key, (allocation, welfare))
                welfares[user_id] = welfare
        return welfares
