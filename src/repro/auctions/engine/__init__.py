"""Vectorized batch auction engine (see DESIGN.md).

This package provides a drop-in, NumPy-backed implementation of the standard
auction's allocation rule plus a parallel/memoised executor for the Clarke-pivot
payment re-solves:

* :mod:`repro.auctions.engine.kernel` — the batch smoothed-greedy kernel: all
  randomised restarts of one ``solve_allocation`` call are evaluated as a single
  NumPy computation instead of a Python loop, with bit-identical results.
* :mod:`repro.auctions.engine.pivot` — :class:`PivotExecutor`, which runs the
  per-winner pivot re-solves through a ``concurrent.futures`` thread/process pool
  and memoises ``solve_allocation`` results by ``(bid-vector hash, seed)``.
* :mod:`repro.auctions.engine.vectorized` — :class:`VectorizedStandardAuction`,
  a :class:`~repro.auctions.standard_auction.StandardAuction` subclass that plugs
  both into the same :class:`~repro.auctions.decomposable.DecomposableMechanism`
  split, so the distributed simulation can use either engine interchangeably.

The engine contract — same integer seed ⇒ bit-identical allocation, welfare and
payments as the reference implementation — is locked in by the differential suite
``tests/auctions/test_engine_equivalence.py``.  That suite gated the default
flip: :data:`DEFAULT_ENGINE` is now ``"vectorized"``, so every front door
(scenario specs, ``AuctionRun``/``BatchAuctionRunner``, the figure sweeps, the
CLI) runs the fast engine unless a call site opts back out with
``engine="reference"`` — results are identical either way, only speed differs.
"""

from __future__ import annotations

from repro.auctions.base import AllocationAlgorithm
from repro.auctions.engine.pivot import PivotExecutor, clear_solve_cache
from repro.auctions.engine.vectorized import VectorizedStandardAuction
from repro.auctions.standard_auction import StandardAuction

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "PivotExecutor",
    "VectorizedStandardAuction",
    "clear_solve_cache",
    "engine_name",
    "make_standard_auction",
    "resolve_engine",
]

#: The engines a call site may select between.
ENGINES = ("reference", "vectorized")

#: The engine used when a call site does not choose one.  Flipped to
#: "vectorized" once the differential suite gated bit-identical results;
#: ``engine="reference"`` remains the escape hatch everywhere.
DEFAULT_ENGINE = "vectorized"


def make_standard_auction(engine: str = DEFAULT_ENGINE, **kwargs) -> StandardAuction:
    """Build a standard auction for the requested engine.

    ``kwargs`` are forwarded to the mechanism constructor (``epsilon``,
    ``perturbation``, ``local_search_rounds``, ... plus the vectorized engine's
    ``pivot_mode``/``pivot_workers`` knobs).
    """
    if engine == "reference":
        kwargs.pop("pivot_mode", None)
        kwargs.pop("pivot_workers", None)
        return StandardAuction(**kwargs)
    if engine == "vectorized":
        return VectorizedStandardAuction(**kwargs)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def engine_name(algorithm: AllocationAlgorithm) -> str:
    """The engine that actually backs ``algorithm`` (``"reference"`` default).

    Engine-aware mechanisms carry an ``engine`` class attribute
    (:class:`VectorizedStandardAuction` says ``"vectorized"``); everything
    else — the reference standard auction, the double auction, user-registered
    mechanisms — reports ``"reference"``.  Records use this, not the requested
    override, so artifacts state the engine that ran.
    """
    return getattr(algorithm, "engine", "reference")


def resolve_engine(algorithm: AllocationAlgorithm, engine: str) -> AllocationAlgorithm:
    """Return ``algorithm`` re-targeted at the requested engine.

    Only the stock standard auction has two engines; any other mechanism — the
    double auction, user-registered mechanisms, and *subclasses* of
    :class:`StandardAuction` that specialise behavior — is returned unchanged
    (swapping a subclass for the stock vectorized engine would silently drop
    its overrides, which matters now that the default engine is applied to
    every mechanism).  The returned mechanism carries over the exact
    ``restarts`` count of the source (not just ``epsilon``), so the two engines
    stay seed-for-seed comparable even if the source clamped its restart count.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if type(algorithm) is StandardAuction:
        is_vectorized = False
    elif type(algorithm) is VectorizedStandardAuction:
        is_vectorized = True
    else:
        return algorithm
    if (engine == "vectorized") == is_vectorized:
        return algorithm
    replacement = make_standard_auction(
        engine,
        epsilon=algorithm.epsilon,
        perturbation=algorithm.perturbation,
        local_search_rounds=algorithm.local_search_rounds,
    )
    replacement.restarts = algorithm.restarts
    return replacement
