"""Vectorized batch auction engine (see DESIGN.md).

This package provides a drop-in, NumPy-backed implementation of the standard
auction's allocation rule plus a parallel/memoised executor for the Clarke-pivot
payment re-solves:

* :mod:`repro.auctions.engine.kernel` — the batch smoothed-greedy kernel: all
  randomised restarts of one ``solve_allocation`` call are evaluated as a single
  NumPy computation instead of a Python loop, with bit-identical results.
* :mod:`repro.auctions.engine.pivot` — :class:`PivotExecutor`, which runs the
  per-winner pivot re-solves through a ``concurrent.futures`` thread/process pool
  and memoises ``solve_allocation`` results by ``(bid-vector hash, seed)``.
* :mod:`repro.auctions.engine.vectorized` — :class:`VectorizedStandardAuction`,
  a :class:`~repro.auctions.standard_auction.StandardAuction` subclass that plugs
  both into the same :class:`~repro.auctions.decomposable.DecomposableMechanism`
  split, so the distributed simulation can use either engine interchangeably.

The engine contract — same integer seed ⇒ bit-identical allocation, welfare and
payments as the reference implementation — is locked in by the differential suite
``tests/auctions/test_engine_equivalence.py``; the default engine everywhere is
``"reference"`` and is only switched per call site via :func:`resolve_engine`.
"""

from __future__ import annotations

from repro.auctions.base import AllocationAlgorithm
from repro.auctions.engine.pivot import PivotExecutor, clear_solve_cache
from repro.auctions.engine.vectorized import VectorizedStandardAuction
from repro.auctions.standard_auction import StandardAuction

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "PivotExecutor",
    "VectorizedStandardAuction",
    "clear_solve_cache",
    "make_standard_auction",
    "resolve_engine",
]

#: The engines a call site may select between.
ENGINES = ("reference", "vectorized")

#: The default stays "reference" (flipped only once the differential suite gates it).
DEFAULT_ENGINE = "reference"


def make_standard_auction(engine: str = DEFAULT_ENGINE, **kwargs) -> StandardAuction:
    """Build a standard auction for the requested engine.

    ``kwargs`` are forwarded to the mechanism constructor (``epsilon``,
    ``perturbation``, ``local_search_rounds``, ... plus the vectorized engine's
    ``pivot_mode``/``pivot_workers`` knobs).
    """
    if engine == "reference":
        kwargs.pop("pivot_mode", None)
        kwargs.pop("pivot_workers", None)
        return StandardAuction(**kwargs)
    if engine == "vectorized":
        return VectorizedStandardAuction(**kwargs)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def resolve_engine(algorithm: AllocationAlgorithm, engine: str) -> AllocationAlgorithm:
    """Return ``algorithm`` re-targeted at the requested engine.

    Only standard auctions have two engines; any other mechanism (e.g. the double
    auction) is returned unchanged.  The returned mechanism carries over the exact
    ``restarts`` count of the source (not just ``epsilon``), so the two engines
    stay seed-for-seed comparable even if the source clamped its restart count.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if not isinstance(algorithm, StandardAuction):
        return algorithm
    is_vectorized = isinstance(algorithm, VectorizedStandardAuction)
    if (engine == "vectorized") == is_vectorized:
        return algorithm
    replacement = make_standard_auction(
        engine,
        epsilon=algorithm.epsilon,
        perturbation=algorithm.perturbation,
        local_search_rounds=algorithm.local_search_rounds,
    )
    replacement.restarts = algorithm.restarts
    return replacement
