"""NumPy kernel for the smoothed-greedy allocation rule.

The reference :meth:`~repro.auctions.standard_auction.StandardAuction.solve_allocation`
runs ``restarts`` independent perturbed greedy passes in a Python loop; each pass
draws one noise value per user, sorts users by smoothed value density and place
users best-fit-decreasing into provider capacities.  This kernel evaluates *all*
restarts as a batch: noise, densities and greedy orders are ``(restarts, n)``
arrays and the best-fit placement advances all restarts one user-position at a
time over a ``(restarts, m)`` matrix of remaining capacities.

Bit-identical equivalence with the reference is a hard contract (the distributed
data-transfer block compares results structurally across providers, and the
differential test suite compares across engines), which pins down three details:

* noise is drawn from the same per-restart ``random.Random(stable_hash(seed,
  "restart", r))`` streams, one draw per user in bid-vector order — exactly the
  draws the reference makes through its ``sorted(..., key=...)`` call;
* all float arithmetic replays the reference's operation order (densities,
  the ``remaining + EPS >= demand`` feasibility test, the per-placement capacity
  subtraction), so every intermediate value is the same IEEE-754 double;
* ties are broken like the reference: the greedy order by ``(-density, user_id)``
  and the best-fit choice by ``(remaining, provider_id)`` — realised here by
  lexsort with a user-id rank key and by ``argmin`` over a provider axis that is
  sorted by provider id (first minimum ⇒ smallest id).
"""

from __future__ import annotations

import random
from math import inf as math_inf
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.auctions.base import UserBid
from repro.common import stable_hash

__all__ = ["batch_greedy_assignments", "fast_local_search", "assignment_welfare"]

#: Same numerical slack as the reference implementation.
_EPS = 1e-12


def batch_greedy_assignments(
    users: Sequence[UserBid],
    capacities: Mapping[str, float],
    seed: int,
    restarts: int,
    perturbation: float,
) -> List[Dict[str, str]]:
    """All restarts of the smoothed best-fit-decreasing greedy, as one batch.

    Args:
        users: valid user bids, in bid-vector order (the reference's filtered list).
        capacities: provider id -> capacity, in bid-vector order.
        seed: the agreed allocation seed.
        restarts: number of perturbed restarts.
        perturbation: relative magnitude of the smoothing noise.

    Returns:
        One ``{user_id: provider_id}`` assignment per restart.  Dict insertion
        order matches the reference exactly (users in greedy-order, skipping the
        ones that did not fit), so downstream float accumulations that iterate the
        dict reproduce the reference bit for bit.
    """
    n = len(users)
    provider_ids = sorted(capacities)
    m = len(provider_ids)

    unit_values = np.array([u.unit_value for u in users], dtype=np.float64)
    demands = np.array([u.demand for u in users], dtype=np.float64)
    caps = np.array([capacities[pid] for pid in provider_ids], dtype=np.float64)

    # Rank of each user's id in sorted-id order: the tie-break key of the greedy sort.
    id_order = sorted(range(n), key=lambda i: users[i].user_id)
    uid_rank = np.empty(n, dtype=np.int64)
    for rank, index in enumerate(id_order):
        uid_rank[index] = rank

    # One noise draw per (restart, user), in user-list order — the same stream the
    # reference consumes through its sort key.
    raw = np.empty((restarts, n), dtype=np.float64)
    for restart in range(restarts):
        rng = random.Random(stable_hash(seed, "restart", restart))
        raw[restart] = [rng.random() for _ in range(n)]
    densities = unit_values[np.newaxis, :] * (1.0 + perturbation * (2.0 * raw - 1.0))

    # Greedy order per restart: ascending (-density, user_id).
    orders = np.lexsort(
        (np.broadcast_to(uid_rank, (restarts, n)), -densities), axis=-1
    )

    # Best-fit decreasing, advanced one position at a time across all restarts.
    remaining = np.tile(caps, (restarts, 1))
    chosen = np.full((restarts, n), -1, dtype=np.int64)
    rows = np.arange(restarts)
    for position in range(n):
        user_index = orders[:, position]
        demand = demands[user_index]
        feasible = remaining + _EPS >= demand[:, np.newaxis]
        fits = feasible.any(axis=1)
        masked = np.where(feasible, remaining, np.inf)
        best = np.argmin(masked, axis=1)
        placed_rows = rows[fits]
        placed_providers = best[fits]
        remaining[placed_rows, placed_providers] -= demand[fits]
        chosen[placed_rows, position] = placed_providers

    assignments: List[Dict[str, str]] = []
    for restart in range(restarts):
        assignment: Dict[str, str] = {}
        for position in range(n):
            provider_index = chosen[restart, position]
            if provider_index >= 0:
                user = users[orders[restart, position]]
                assignment[user.user_id] = provider_ids[provider_index]
        assignments.append(assignment)
    return assignments


def fast_local_search(
    users: Sequence[UserBid],
    capacities: Mapping[str, float],
    assignment: Dict[str, str],
    values: Mapping[str, float],
    demands: Mapping[str, float],
    rounds: int,
) -> Dict[str, str]:
    """Drop-in for :meth:`StandardAuction._local_search` with precomputed lookups.

    Semantics are replayed exactly — the same loser order, the same first-match
    eviction scan over the assignment's insertion order, the same mutation and
    float-subtraction sequences — so the resulting dict is identical, including
    its insertion order.  The speedup comes purely from replacing per-iteration
    ``UserBid`` attribute/property access with the ``values``/``demands`` tables
    (the reference keeps its straightforward form as the readable baseline).
    """
    assignment = dict(assignment)
    for _ in range(max(0, rounds)):
        remaining = dict(capacities)
        for user_id, provider_id in assignment.items():
            remaining[provider_id] -= demands[user_id]
        improved = False
        losers = [u.user_id for u in users if u.user_id not in assignment]
        losers.sort(key=lambda uid: (-values[uid], uid))
        # The eviction scan is a provable no-op for a loser unless some winner has
        # a strictly lower value, so it can be skipped outright when even the
        # cheapest winner is at least as valuable — the common case, since losers
        # are visited in decreasing-value order.  ``min_winner_value`` is kept
        # current across mutations (evictions may remove the minimum, in which
        # case it is recomputed).
        min_winner_value = min(values[uid] for uid in assignment) if assignment else math_inf
        # A loser can be placed directly iff the roomiest provider fits it, so a
        # single comparison against the running maximum skips the whole scan.
        max_remaining = max(remaining.values())
        winners_by_value: Optional[List[Tuple[float, str]]] = None
        for loser_id in losers:
            loser_demand = demands[loser_id]
            loser_value = values[loser_id]
            if max_remaining + _EPS >= loser_demand:
                fits = [pid for pid, cap in remaining.items() if cap + _EPS >= loser_demand]
                chosen_pid = min(fits, key=lambda pid: remaining[pid])
                assignment[loser_id] = chosen_pid
                remaining[chosen_pid] -= loser_demand
                max_remaining = max(remaining.values())
                winners_by_value = None  # assignment changed; rebuild lazily
                if loser_value < min_winner_value:
                    min_winner_value = loser_value
                improved = True
                continue
            if min_winner_value + _EPS >= loser_value:
                continue
            # Existence probe before the exact scan: walk winners in ascending
            # value order and stop at the threshold.  If none of the (usually
            # few) cheap-enough winners frees enough capacity, the insertion-
            # order scan below would be a full-length no-op — skip it.  The
            # probe mutates nothing, so exactness is untouched: the actual
            # eviction is still chosen by the reference's first-match rule.
            if winners_by_value is None:
                winners_by_value = sorted((values[uid], uid) for uid in assignment)
            evictable = False
            for winner_value, winner_id in winners_by_value:
                if winner_value + _EPS >= loser_value:
                    break
                freed = remaining[assignment[winner_id]] + demands[winner_id]
                if freed + _EPS >= loser_demand:
                    evictable = True
                    break
            if not evictable:
                continue
            for winner_id, provider_id in assignment.items():
                if values[winner_id] + _EPS >= loser_value:
                    continue
                freed = remaining[provider_id] + demands[winner_id]
                if freed + _EPS >= loser_demand:
                    evicted_value = values[winner_id]
                    del assignment[winner_id]
                    assignment[loser_id] = provider_id
                    remaining[provider_id] = freed - loser_demand
                    max_remaining = max(remaining.values())
                    winners_by_value = None  # assignment changed; rebuild lazily
                    if evicted_value <= min_winner_value:
                        min_winner_value = min(values[uid] for uid in assignment)
                    elif loser_value < min_winner_value:
                        min_winner_value = loser_value
                    improved = True
                    break
        if not improved:
            break
    return assignment


def assignment_welfare(assignment: Dict[str, str], values: Mapping[str, float]) -> float:
    """Reference ``_assignment_welfare``: same summation order (dict insertion)."""
    return sum(values[uid] for uid in assignment)
