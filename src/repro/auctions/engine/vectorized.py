"""The vectorized standard auction: batch kernel + memoised parallel pivots.

:class:`VectorizedStandardAuction` is a :class:`~repro.auctions.standard_auction.
StandardAuction` whose two expensive pieces are swapped out:

* ``solve_allocation`` evaluates all greedy restarts through the NumPy batch
  kernel (:func:`repro.auctions.engine.kernel.batch_greedy_assignments`) and
  memoises the result in the process-wide solve cache — inside a distributed
  simulation every provider computes the allocation task on identical inputs, so
  all but the first computation become cache hits;
* the per-winner Clarke-pivot re-solves go through a shared
  :class:`~repro.auctions.engine.pivot.PivotExecutor` (thread/process pool plus
  the same memo), collapsing the k+1-fold replication of each payment task.

The local-search improvement and the restart selection deliberately reuse the
reference implementation's own methods on the kernel's assignments: dict insertion
order — and therefore every float accumulation order — matches the reference, so
results are bit-identical (the contract of DESIGN.md, enforced by
``tests/auctions/test_engine_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.auctions.base import Allocation, BidVector
from repro.auctions.engine.kernel import (
    assignment_welfare,
    batch_greedy_assignments,
    fast_local_search,
)
from repro.auctions.engine.pivot import (
    PivotExecutor,
    bid_vector_fingerprint,
    shared_solve_cache,
)
from repro.auctions.standard_auction import _EPS, StandardAuction
from repro.obs.context import current_observation

__all__ = ["VectorizedStandardAuction"]


class VectorizedStandardAuction(StandardAuction):
    """Vectorized engine behind the same mechanism interface and semantics.

    Args:
        pivot_mode: how pivot re-solves are executed — ``"auto"`` (default),
            ``"serial"``, ``"thread"`` or ``"process"``; see :class:`PivotExecutor`.
        pivot_workers: pool size for the thread/process modes.
        (remaining arguments as in :class:`StandardAuction`)
    """

    name = "standard-auction-smoothed-vcg-vectorized"
    engine = "vectorized"

    def __init__(
        self,
        epsilon: float = 0.25,
        perturbation: float = 0.05,
        local_search_rounds: int = 1,
        min_restarts: int = 4,
        max_restarts: int = 512,
        pivot_mode: str = "auto",
        pivot_workers: Optional[int] = None,
    ) -> None:
        super().__init__(epsilon, perturbation, local_search_rounds, min_restarts, max_restarts)
        self.pivot_mode = pivot_mode
        self.pivot_workers = pivot_workers
        self._executor: Optional[PivotExecutor] = None

    # ------------------------------------------------------------- plumbing --
    def engine_params(self) -> Tuple[int, float, int]:
        """The parameters that determine a solve, used in cache keys."""
        return (self.restarts, self.perturbation, self.local_search_rounds)

    @property
    def pivot_executor(self) -> PivotExecutor:
        if self._executor is None:
            self._executor = PivotExecutor(self.pivot_mode, self.pivot_workers)
        return self._executor

    def close(self) -> None:
        """Shut down the pivot pool (idempotent; a fresh one is created on demand)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __getstate__(self):
        # Executors do not pickle; workers rebuild their own on demand.
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    # ------------------------------------------- DecomposableMechanism API --
    def solve_allocation(self, bids: BidVector, seed: int) -> Tuple[Allocation, float]:
        """Batch-kernel version of the reference Step 1, memoised process-wide."""
        key = (self.engine_params(), bid_vector_fingerprint(bids), seed)
        cache = shared_solve_cache()
        hits_before = cache.hits
        result = self._solve_cached(bids, seed, key)
        # Observability hook: one "solve" span per top-level allocation solve,
        # emitted here (the main-thread entry) rather than inside the cached
        # solver, which pivot executors may call from worker threads.  The
        # timestamp is the tracer's logical sequence — engine work has no sim
        # clock (see repro.obs).
        obs = current_observation()
        if obs is not None and obs.tracer is not None and obs.tracer.active:
            obs.tracer.emit(
                "solve",
                "engine",
                ts=obs.tracer.seq(),
                dur=1.0,
                users=len(bids.users),
                memo_hit=cache.hits > hits_before,
            )
        return result

    def _solve_cached(self, bids: BidVector, seed: int, key) -> Tuple[Allocation, float]:
        """Solve under an externally derived cache key (the pivot executor's path)."""
        cache = shared_solve_cache()
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._solve_uncached(bids, seed)
        cache.put(key, result)
        return result

    def _solve_uncached(self, bids: BidVector, seed: int) -> Tuple[Allocation, float]:
        # Filtering and allocation construction are the reference's own helpers,
        # so the two engines cannot drift apart on eligibility rules.
        users = self.eligible_users(bids)
        capacities = self.eligible_capacities(bids)
        if not users or not capacities:
            return Allocation.empty(), 0.0

        assignments = batch_greedy_assignments(
            users, capacities, seed, self.restarts, self.perturbation
        )
        values = {u.user_id: u.total_value for u in users}
        demands = {u.user_id: u.demand for u in users}
        best_assignment: Dict[str, str] = {}
        best_welfare = -1.0
        for assignment in assignments:
            assignment = fast_local_search(
                users, capacities, assignment, values, demands, self.local_search_rounds
            )
            welfare = assignment_welfare(assignment, values)
            if welfare > best_welfare + _EPS:
                best_welfare = welfare
                best_assignment = assignment
        allocation = self.allocation_from_assignment(users, best_assignment)
        return allocation, max(best_welfare, 0.0)

    def _pivot_welfares(
        self, bids: BidVector, user_ids: Sequence[str], seed: int
    ) -> Dict[str, float]:
        """Step 2's re-solves, routed through the shared pool + memo."""
        return self.pivot_executor.pivot_welfares(self, bids, user_ids, seed)
