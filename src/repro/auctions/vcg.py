"""Exact VCG standard auction (ground-truth baseline).

Solves the welfare-maximisation problem of the standard auction *exactly* by branch
and bound over single-provider assignments and charges exact Clarke-pivot payments.
With an exact welfare-maximising allocation rule, VCG is dominant-strategy truthful —
the property-based tests use this mechanism as the reference against which the
approximate :class:`~repro.auctions.standard_auction.StandardAuction` is compared.

Complexity is exponential in the number of users (each user can go to any provider or
nowhere), so keep instances small (n ≲ 12).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.auctions.base import (
    Allocation,
    AllocationAlgorithm,
    AuctionResult,
    BidVector,
    Payments,
    UserBid,
)
from repro.auctions.decomposable import DecomposableMechanism
from repro.auctions.payments import clarke_pivot_payments
from repro.auctions.validation import is_valid_user_bid

__all__ = ["ExactVCGAuction"]

_EPS = 1e-12


class ExactVCGAuction(AllocationAlgorithm, DecomposableMechanism):
    """Exact multiple-knapsack welfare maximisation with Clarke-pivot payments."""

    name = "exact-vcg"
    requires_provider_bids = False
    single_provider_allocation = True

    def __init__(self, max_users: int = 16) -> None:
        self.max_users = max_users

    # ------------------------------------------------------------------ run --
    def run(self, bids: BidVector, rng: Optional[random.Random] = None) -> AuctionResult:
        seed = 0
        allocation, welfare = self.solve_allocation(bids, seed)
        payments = self.payments_for_users(bids, bids.user_ids, allocation, welfare, seed)
        return self.assemble(bids, allocation, payments)

    # ------------------------------------------- DecomposableMechanism API --
    def solve_allocation(self, bids: BidVector, seed: int) -> Tuple[Allocation, float]:
        users = [
            bid for bid in bids.users
            if is_valid_user_bid(bid) and bid.unit_value > 0 and bid.demand > _EPS
        ]
        if len(users) > self.max_users:
            raise ValueError(
                f"ExactVCGAuction is exponential; refusing {len(users)} users "
                f"(max_users={self.max_users})"
            )
        providers = [p for p in bids.providers if p.capacity > _EPS]
        if not users or not providers:
            return Allocation.empty(), 0.0
        # Sort by decreasing total value so good solutions are found early and the
        # upper bound prunes aggressively.
        users = sorted(users, key=lambda u: (-u.total_value, u.user_id))
        provider_ids = [p.provider_id for p in providers]
        capacities = [p.capacity for p in providers]
        suffix_value = [0.0] * (len(users) + 1)
        for index in range(len(users) - 1, -1, -1):
            suffix_value[index] = suffix_value[index + 1] + users[index].total_value

        best: Dict[str, str] = {}
        best_welfare = 0.0
        assignment: Dict[str, str] = {}

        def search(index: int, current: float, remaining: List[float]) -> None:
            nonlocal best, best_welfare
            if current > best_welfare + _EPS:
                best_welfare = current
                best = dict(assignment)
            if index >= len(users):
                return
            if current + suffix_value[index] <= best_welfare + _EPS:
                return  # even taking every remaining user cannot improve
            user = users[index]
            # Branch: assign to each provider with room (deduplicating equal residuals).
            seen_residuals = set()
            for position, capacity in enumerate(remaining):
                if capacity + _EPS < user.demand:
                    continue
                rounded = round(capacity, 12)
                if rounded in seen_residuals:
                    continue
                seen_residuals.add(rounded)
                remaining[position] -= user.demand
                assignment[user.user_id] = provider_ids[position]
                search(index + 1, current + user.total_value, remaining)
                del assignment[user.user_id]
                remaining[position] += user.demand
            # Branch: skip the user.
            search(index + 1, current, remaining)

        search(0, 0.0, list(capacities))
        allocation = Allocation.from_dict(
            {
                (user.user_id, best[user.user_id]): user.demand
                for user in users
                if user.user_id in best
            }
        )
        return allocation, best_welfare

    def payments_for_users(
        self,
        bids: BidVector,
        user_ids: Sequence[str],
        allocation: Allocation,
        welfare: float,
        seed: int,
    ) -> Dict[str, float]:
        def welfare_without(user_id: str) -> float:
            _, pivot_welfare = self.solve_allocation(bids.without_user(user_id), seed)
            return pivot_welfare

        return clarke_pivot_payments(bids, allocation, user_ids, welfare_without)

    def assemble(
        self,
        bids: BidVector,
        allocation: Allocation,
        user_payments: Dict[str, float],
    ) -> AuctionResult:
        provider_revenues: Dict[str, float] = {}
        for user_id, provider_id, _amount in allocation.entries:
            payment = user_payments.get(user_id, 0.0)
            provider_revenues[provider_id] = provider_revenues.get(provider_id, 0.0) + payment
        return AuctionResult(
            allocation, Payments.from_dicts(user_payments, provider_revenues)
        )
