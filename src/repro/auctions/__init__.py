"""Auction mechanisms (the allocation algorithms ``A`` of the paper).

The framework treats the allocation algorithm as a black box ``A`` that maps a vector
of bids to an allocation and payments.  This package provides the two mechanisms the
paper evaluates plus baselines:

* :class:`~repro.auctions.double_auction.DoubleAuction` — truthful, budget-balanced
  double auction for divisible bandwidth using ordering + water-filling with McAfee
  trade reduction (Section 5.2.1; Zheng et al. style).  Computationally cheap.
* :class:`~repro.auctions.standard_auction.StandardAuction` — truthful-in-expectation
  approximately-optimal single-provider-per-user auction with VCG (Clarke pivot)
  payments computed by re-solving the allocation per user (Section 5.2.2; Zhang et
  al. style).  Computationally expensive and embarrassingly parallel in the payment
  phase.
* :class:`~repro.auctions.vcg.ExactVCGAuction` — exact welfare maximisation by branch
  and bound with exact VCG payments; exponential, used as ground truth for small
  instances.
* :class:`~repro.auctions.greedy.GreedyStandardAuction` — fast non-truthful baseline.

The standard auction additionally exists in two engines with bit-identical results:
the readable reference above and the NumPy-backed
:class:`~repro.auctions.engine.VectorizedStandardAuction` (see
:mod:`repro.auctions.engine` and DESIGN.md); call sites switch between them with
:func:`~repro.auctions.engine.resolve_engine`.
"""

from repro.auctions.base import (
    Allocation,
    AllocationAlgorithm,
    AuctionResult,
    BidVector,
    Payments,
    ProviderAsk,
    UserBid,
)
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    VectorizedStandardAuction,
    make_standard_auction,
    resolve_engine,
)
from repro.auctions.greedy import GreedyStandardAuction
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.validation import (
    InvalidBidError,
    is_valid_provider_ask,
    is_valid_user_bid,
    neutral_user_bid,
    sanitize_bid_vector,
)
from repro.auctions.vcg import ExactVCGAuction
from repro.auctions.welfare import (
    budget_surplus,
    provider_utilities,
    social_welfare,
    user_utilities,
)

__all__ = [
    "Allocation",
    "AllocationAlgorithm",
    "AuctionResult",
    "BidVector",
    "DEFAULT_ENGINE",
    "DoubleAuction",
    "ENGINES",
    "ExactVCGAuction",
    "GreedyStandardAuction",
    "InvalidBidError",
    "Payments",
    "ProviderAsk",
    "StandardAuction",
    "UserBid",
    "VectorizedStandardAuction",
    "make_standard_auction",
    "resolve_engine",
    "budget_surplus",
    "is_valid_provider_ask",
    "is_valid_user_bid",
    "neutral_user_bid",
    "provider_utilities",
    "sanitize_bid_vector",
    "social_welfare",
    "user_utilities",
]
