"""Payment rules shared by the standard-auction mechanisms.

The standard auction of §5.2.2 uses the VCG (Clarke pivot) payment rule on top of a
(near-)welfare-maximising allocation rule: a winner pays the externality it imposes on
the other users, i.e. the welfare the others would obtain if the winner were absent
minus the welfare the others obtain in the chosen allocation.  Losers pay nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.auctions.base import Allocation, BidVector

__all__ = ["clarke_pivot_payment", "clarke_pivot_payments", "others_welfare"]


def others_welfare(bids: BidVector, allocation: Allocation, excluded_user: str) -> float:
    """Declared welfare of every user except ``excluded_user`` under ``allocation``."""
    total = 0.0
    for user in bids.users:
        if user.user_id == excluded_user:
            continue
        total += user.unit_value * allocation.user_total(user.user_id)
    return total


def clarke_pivot_payment(
    bids: BidVector,
    allocation: Allocation,
    user_id: str,
    welfare_without_user: float,
) -> float:
    """VCG payment of one user.

    Args:
        bids: the declared bid vector.
        allocation: the allocation chosen when everyone participates.
        user_id: the user whose payment is computed.
        welfare_without_user: the welfare of the allocation the mechanism would pick
            if ``user_id`` did not participate (the "pivot" term); callers obtain it
            by re-running the allocation rule on ``bids.without_user(user_id)``.

    Returns:
        ``max(0, welfare_without_user - others_welfare_in_chosen_allocation)``.
        The ``max`` guards against a (slightly) sub-optimal approximate allocation
        rule producing negative payments; with an exact rule the clamp never binds.
    """
    welfare_others_now = others_welfare(bids, allocation, user_id)
    return max(0.0, welfare_without_user - welfare_others_now)


def clarke_pivot_payments(
    bids: BidVector,
    allocation: Allocation,
    user_ids: Iterable[str],
    welfare_without: Callable[[str], float],
) -> Dict[str, float]:
    """VCG payments for a set of users; losers get a zero payment.

    Args:
        welfare_without: callback returning, for a user id, the welfare of the
            allocation computed without that user (typically an expensive re-solve —
            this is exactly the work the parallel allocator distributes).
    """
    payments: Dict[str, float] = {}
    winners = set(allocation.winners())
    for user_id in user_ids:
        if user_id not in winners:
            payments[user_id] = 0.0
            continue
        payments[user_id] = clarke_pivot_payment(
            bids, allocation, user_id, welfare_without(user_id)
        )
    return payments
