"""Greedy first-fit baseline for the standard auction.

A fast, deterministic, *non-truthful* baseline: users are considered in decreasing
unit-value order and placed first-fit into providers; winners pay their own bid.  It
exists to (a) give the benchmarks a cheap comparator for allocation quality, and
(b) give the game-theory test-suite a mechanism that is *expected to fail* the
truthfulness checks, demonstrating that those checks have teeth.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.auctions.base import (
    Allocation,
    AllocationAlgorithm,
    AuctionResult,
    BidVector,
    Payments,
)
from repro.auctions.validation import is_valid_user_bid

__all__ = ["GreedyStandardAuction"]

_EPS = 1e-12


class GreedyStandardAuction(AllocationAlgorithm):
    """First-fit decreasing allocation with pay-your-bid payments (not truthful)."""

    name = "greedy-pay-your-bid"
    requires_provider_bids = False
    single_provider_allocation = True

    def run(self, bids: BidVector, rng: Optional[random.Random] = None) -> AuctionResult:
        users = sorted(
            (
                bid for bid in bids.users
                if is_valid_user_bid(bid) and bid.unit_value > 0 and bid.demand > _EPS
            ),
            key=lambda u: (-u.unit_value, u.user_id),
        )
        remaining = {p.provider_id: p.capacity for p in bids.providers if p.capacity > _EPS}
        order = sorted(remaining)
        amounts: Dict[tuple, float] = {}
        payments: Dict[str, float] = {}
        for user in users:
            for provider_id in order:
                if remaining[provider_id] + _EPS >= user.demand:
                    amounts[(user.user_id, provider_id)] = user.demand
                    remaining[provider_id] -= user.demand
                    payments[user.user_id] = user.total_value
                    break
        allocation = Allocation.from_dict(amounts)
        provider_revenues: Dict[str, float] = {}
        for (user_id, provider_id), _amount in amounts.items():
            provider_revenues[provider_id] = (
                provider_revenues.get(provider_id, 0.0) + payments.get(user_id, 0.0)
            )
        return AuctionResult(allocation, Payments.from_dicts(payments, provider_revenues))
