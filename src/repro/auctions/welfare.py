"""Social welfare, utilities and budget accounting.

These are the quantities the game-theoretic model of the paper is written in terms of
(Section 3.1): a user's utility is the value it attributes to its allocation minus its
payment; a provider's utility is the payment it receives minus the value (cost) it
attributes to what it supplies; social welfare is the total user value (standard
auction) or the difference between total user value and total provider cost (double
auction).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.auctions.base import Allocation, AuctionResult, BidVector, Payments

__all__ = [
    "social_welfare",
    "user_utilities",
    "provider_utilities",
    "budget_surplus",
    "user_utility",
    "provider_utility",
]


def social_welfare(
    bids: BidVector,
    allocation: Allocation,
    include_provider_costs: bool = True,
) -> float:
    """Social welfare of an allocation under the declared valuations.

    Args:
        bids: declared valuations (assumed truthful when measuring true welfare).
        allocation: the allocation to evaluate.
        include_provider_costs: if True (double auction), welfare is user value minus
            provider cost; if False (standard auction), welfare is user value only.
    """
    value = sum(
        bids.user(user_id).unit_value * allocation.user_total(user_id)
        for user_id in allocation.winners()
    )
    if not include_provider_costs:
        return value
    cost = sum(
        bids.provider(provider_id).unit_cost * allocation.provider_total(provider_id)
        for provider_id in allocation.providers_used()
    )
    return value - cost


def user_utility(
    valuation: BidVector, result: AuctionResult, user_id: str
) -> float:
    """Utility of one user: value of its allocation (at its *true* valuation) minus payment."""
    value = valuation.user(user_id).unit_value * result.allocation.user_total(user_id)
    return value - result.payments.user_payment(user_id)


def provider_utility(
    valuation: BidVector, result: AuctionResult, provider_id: str
) -> float:
    """Utility of one provider: revenue minus the cost of the bandwidth it supplies."""
    cost = valuation.provider(provider_id).unit_cost * result.allocation.provider_total(
        provider_id
    )
    return result.payments.provider_revenue(provider_id) - cost


def user_utilities(valuation: BidVector, result: AuctionResult) -> Dict[str, float]:
    """Utilities of all users, computed against the given (true) valuation."""
    return {uid: user_utility(valuation, result, uid) for uid in valuation.user_ids}


def provider_utilities(valuation: BidVector, result: AuctionResult) -> Dict[str, float]:
    """Utilities of all providers, computed against the given (true) valuation."""
    return {pid: provider_utility(valuation, result, pid) for pid in valuation.provider_ids}


def budget_surplus(payments: Payments) -> float:
    """Total user payments minus total provider revenues (non-negative = budget balanced)."""
    return payments.total_paid - payments.total_received
