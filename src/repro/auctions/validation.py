"""Bid validation and neutral bids.

Bidders in a decentralized system "may adopt arbitrary behaviours such as submitting
different bids to different providers or not submitting a bid" (Section 3.2).  The
framework handles this by (a) the bid agreement, which resolves inconsistencies, and
(b) substituting a *neutral bid* — one that excludes the bidder from the auction — for
anything invalid or missing.  This module defines what "valid" means and produces the
neutral substitutes.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.auctions.base import BidVector, ProviderAsk, UserBid

__all__ = [
    "InvalidBidError",
    "is_valid_user_bid",
    "is_valid_provider_ask",
    "neutral_user_bid",
    "neutral_provider_ask",
    "coerce_user_bid",
    "sanitize_bid_vector",
]


class InvalidBidError(ValueError):
    """Raised when a bid cannot be interpreted at all (wrong type or structure)."""


def _is_finite_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def is_valid_user_bid(
    bid: Any,
    max_unit_value: float = 1e9,
    max_demand: float = 1e9,
) -> bool:
    """A user bid is valid if its numeric fields are finite, positive and bounded."""
    if not isinstance(bid, UserBid):
        return False
    if not _is_finite_number(bid.unit_value) or not _is_finite_number(bid.demand):
        return False
    if bid.unit_value < 0 or bid.unit_value > max_unit_value:
        return False
    if bid.demand <= 0 or bid.demand > max_demand:
        return False
    return True


def is_valid_provider_ask(
    ask: Any,
    max_unit_cost: float = 1e9,
    max_capacity: float = 1e12,
) -> bool:
    """A provider ask is valid if cost and capacity are finite and non-negative."""
    if not isinstance(ask, ProviderAsk):
        return False
    if not _is_finite_number(ask.unit_cost) or not _is_finite_number(ask.capacity):
        return False
    if ask.unit_cost < 0 or ask.unit_cost > max_unit_cost:
        return False
    if ask.capacity < 0 or ask.capacity > max_capacity:
        return False
    return True


def neutral_user_bid(user_id: str) -> UserBid:
    """The pre-determined valid bid substituted for a missing/invalid user bid.

    A zero unit value with an infinitesimal demand never wins anything and never
    affects other users' payments in the mechanisms of this package, which is the
    "excludes i from the auction" semantics of the paper's ⊥ substitution.
    """
    return UserBid(user_id=user_id, unit_value=0.0, demand=1e-9)


def neutral_provider_ask(provider_id: str) -> ProviderAsk:
    """Neutral ask: zero capacity, so the provider cannot trade."""
    return ProviderAsk(provider_id=provider_id, unit_cost=0.0, capacity=0.0)


def coerce_user_bid(user_id: str, candidate: Any) -> UserBid:
    """Return ``candidate`` if it is a valid bid *for this user*, else the neutral bid."""
    if is_valid_user_bid(candidate) and candidate.user_id == user_id:
        return candidate
    return neutral_user_bid(user_id)


def sanitize_bid_vector(bids: BidVector) -> BidVector:
    """Replace every invalid bid/ask in a vector by its neutral substitute."""
    users = tuple(
        bid if is_valid_user_bid(bid) else neutral_user_bid(bid.user_id) for bid in bids.users
    )
    providers = tuple(
        ask if is_valid_provider_ask(ask) else neutral_provider_ask(ask.provider_id)
        for ask in bids.providers
    )
    return BidVector(users, providers)
