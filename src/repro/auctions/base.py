"""Core data model for resource-allocation auctions.

The family of auctions in the paper (Section 3.1) has ``m`` providers selling a
divisible resource (bandwidth) with limited capacity, and ``n`` users willing to pay
for an amount of that resource.  The auctioneer outputs a *feasible allocation* — an
assignment of resource amounts from providers to users that respects every provider's
capacity — and a vector of *payments* made by users and received by providers.

The types here are deliberately plain (frozen dataclasses over floats and strings) so
they can be shipped between simulated nodes, canonically encoded for commitments, and
compared structurally by the validation blocks.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "UserBid",
    "ProviderAsk",
    "BidVector",
    "Allocation",
    "Payments",
    "AuctionResult",
    "AllocationAlgorithm",
    "FeasibilityError",
]

#: Numerical slack used by feasibility checks.
EPSILON = 1e-9


class FeasibilityError(ValueError):
    """Raised when an allocation violates capacity or non-negativity constraints."""


@dataclass(frozen=True, order=True)
class UserBid:
    """A user's declared willingness to pay.

    Attributes:
        user_id: unique identifier of the user.
        unit_value: declared value for one unit of the resource (currency / unit).
        demand: amount of resource requested.  In the standard auction the demand is
            all-or-nothing at a single provider; in the double auction it may be
            split across providers.
    """

    user_id: str
    unit_value: float
    demand: float

    @property
    def total_value(self) -> float:
        """Declared value if the full demand is allocated."""
        return self.unit_value * self.demand

    def with_unit_value(self, unit_value: float) -> "UserBid":
        return UserBid(self.user_id, unit_value, self.demand)

    def with_demand(self, demand: float) -> "UserBid":
        return UserBid(self.user_id, self.unit_value, demand)


@dataclass(frozen=True, order=True)
class ProviderAsk:
    """A provider's declared cost and available capacity.

    Attributes:
        provider_id: unique identifier of the provider (gateway).
        unit_cost: declared cost of providing one unit (used by the double auction;
            the standard auction ignores provider costs, matching §5.2.2 where
            providers do not bid).
        capacity: amount of resource the provider can allocate in total.
    """

    provider_id: str
    unit_cost: float
    capacity: float

    def with_unit_cost(self, unit_cost: float) -> "ProviderAsk":
        return ProviderAsk(self.provider_id, unit_cost, self.capacity)

    def with_capacity(self, capacity: float) -> "ProviderAsk":
        return ProviderAsk(self.provider_id, self.unit_cost, capacity)


@dataclass(frozen=True)
class BidVector:
    """The input of the allocation algorithm: all user bids and provider asks."""

    users: Tuple[UserBid, ...]
    providers: Tuple[ProviderAsk, ...]

    def __post_init__(self) -> None:
        user_ids = [u.user_id for u in self.users]
        provider_ids = [p.provider_id for p in self.providers]
        if len(set(user_ids)) != len(user_ids):
            raise ValueError("duplicate user ids in bid vector")
        if len(set(provider_ids)) != len(provider_ids):
            raise ValueError("duplicate provider ids in bid vector")

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def of(users: Iterable[UserBid], providers: Iterable[ProviderAsk]) -> "BidVector":
        return BidVector(tuple(users), tuple(providers))

    # -- lookups ----------------------------------------------------------------
    @property
    def user_ids(self) -> List[str]:
        return [u.user_id for u in self.users]

    @property
    def provider_ids(self) -> List[str]:
        return [p.provider_id for p in self.providers]

    def user(self, user_id: str) -> UserBid:
        for bid in self.users:
            if bid.user_id == user_id:
                return bid
        raise KeyError(f"unknown user {user_id!r}")

    def provider(self, provider_id: str) -> ProviderAsk:
        for ask in self.providers:
            if ask.provider_id == provider_id:
                return ask
        raise KeyError(f"unknown provider {provider_id!r}")

    # -- aggregates -------------------------------------------------------------
    @property
    def total_demand(self) -> float:
        return sum(u.demand for u in self.users)

    @property
    def total_capacity(self) -> float:
        return sum(p.capacity for p in self.providers)

    # -- functional updates -------------------------------------------------------
    def replace_user(self, bid: UserBid) -> "BidVector":
        """Return a copy with the bid of ``bid.user_id`` replaced."""
        users = tuple(bid if u.user_id == bid.user_id else u for u in self.users)
        if all(u.user_id != bid.user_id for u in self.users):
            raise KeyError(f"unknown user {bid.user_id!r}")
        return BidVector(users, self.providers)

    def replace_provider(self, ask: ProviderAsk) -> "BidVector":
        providers = tuple(
            ask if p.provider_id == ask.provider_id else p for p in self.providers
        )
        if all(p.provider_id != ask.provider_id for p in self.providers):
            raise KeyError(f"unknown provider {ask.provider_id!r}")
        return BidVector(self.users, providers)

    def without_user(self, user_id: str) -> "BidVector":
        """Return a copy with the given user removed (used for VCG pivots)."""
        return BidVector(
            tuple(u for u in self.users if u.user_id != user_id), self.providers
        )


@dataclass(frozen=True)
class Allocation:
    """A feasible assignment of resource amounts from providers to users.

    Stored as a sorted tuple of ``(user_id, provider_id, amount)`` entries so the
    value is hashable, canonically encodable and structurally comparable across
    providers (which the input-validation and data-transfer blocks rely on).
    """

    entries: Tuple[Tuple[str, str, float], ...] = ()

    @staticmethod
    def from_dict(amounts: Mapping[Tuple[str, str], float]) -> "Allocation":
        entries = tuple(
            sorted(
                (user_id, provider_id, float(amount))
                for (user_id, provider_id), amount in amounts.items()
                if amount > EPSILON
            )
        )
        return Allocation(entries)

    @staticmethod
    def empty() -> "Allocation":
        return Allocation(())

    # -- views -------------------------------------------------------------------
    def as_dict(self) -> Dict[Tuple[str, str], float]:
        return {(user, provider): amount for user, provider, amount in self.entries}

    def amount(self, user_id: str, provider_id: str) -> float:
        for user, provider, amount in self.entries:
            if user == user_id and provider == provider_id:
                return amount
        return 0.0

    def user_total(self, user_id: str) -> float:
        return sum(a for u, _, a in self.entries if u == user_id)

    def provider_total(self, provider_id: str) -> float:
        return sum(a for _, p, a in self.entries if p == provider_id)

    def winners(self) -> List[str]:
        """User ids with a strictly positive allocation."""
        return sorted({u for u, _, a in self.entries if a > EPSILON})

    def providers_used(self) -> List[str]:
        return sorted({p for _, p, a in self.entries if a > EPSILON})

    @property
    def total_allocated(self) -> float:
        return sum(a for _, _, a in self.entries)

    def is_empty(self) -> bool:
        return not self.entries

    # -- checks -------------------------------------------------------------------
    def check_feasible(self, bids: BidVector, single_provider: bool = False) -> None:
        """Raise :class:`FeasibilityError` on any constraint violation.

        Args:
            bids: the bid vector defining demands and capacities.
            single_provider: if True, additionally require that every user is served
                by at most one provider and either fully or not at all (the standard
                auction's all-or-nothing constraint).
        """
        for user_id, provider_id, amount in self.entries:
            if amount < -EPSILON:
                raise FeasibilityError(f"negative allocation for {user_id} at {provider_id}")
            if user_id not in bids.user_ids:
                raise FeasibilityError(f"allocation references unknown user {user_id!r}")
            if provider_id not in bids.provider_ids:
                raise FeasibilityError(
                    f"allocation references unknown provider {provider_id!r}"
                )
        for provider in bids.providers:
            used = self.provider_total(provider.provider_id)
            if used > provider.capacity + EPSILON:
                raise FeasibilityError(
                    f"provider {provider.provider_id} over capacity: {used} > {provider.capacity}"
                )
        for user in bids.users:
            received = self.user_total(user.user_id)
            if received > user.demand + EPSILON:
                raise FeasibilityError(
                    f"user {user.user_id} allocated more than demanded: "
                    f"{received} > {user.demand}"
                )
            if single_provider:
                providers_of_user = [p for u, p, a in self.entries if u == user.user_id and a > EPSILON]
                if len(providers_of_user) > 1:
                    raise FeasibilityError(
                        f"user {user.user_id} split across providers {providers_of_user}"
                    )
                if providers_of_user and abs(received - user.demand) > 1e-6:
                    raise FeasibilityError(
                        f"user {user.user_id} partially allocated ({received} of {user.demand})"
                    )


@dataclass(frozen=True)
class Payments:
    """Payments made by users and received by providers.

    Positive ``user_payments`` are paid *by* users; positive ``provider_revenues``
    are paid *to* providers.  Stored as sorted tuples for structural comparability.
    """

    user_payments: Tuple[Tuple[str, float], ...] = ()
    provider_revenues: Tuple[Tuple[str, float], ...] = ()

    @staticmethod
    def from_dicts(
        user_payments: Mapping[str, float],
        provider_revenues: Optional[Mapping[str, float]] = None,
    ) -> "Payments":
        return Payments(
            tuple(sorted((uid, float(p)) for uid, p in user_payments.items())),
            tuple(sorted((pid, float(r)) for pid, r in (provider_revenues or {}).items())),
        )

    @staticmethod
    def zero() -> "Payments":
        return Payments((), ())

    def user_payment(self, user_id: str) -> float:
        for uid, payment in self.user_payments:
            if uid == user_id:
                return payment
        return 0.0

    def provider_revenue(self, provider_id: str) -> float:
        for pid, revenue in self.provider_revenues:
            if pid == provider_id:
                return revenue
        return 0.0

    @property
    def total_paid(self) -> float:
        return sum(p for _, p in self.user_payments)

    @property
    def total_received(self) -> float:
        return sum(r for _, r in self.provider_revenues)

    def is_budget_balanced(self, tolerance: float = 1e-9) -> bool:
        """True if users pay at least as much as providers receive."""
        return self.total_paid >= self.total_received - tolerance


@dataclass(frozen=True)
class AuctionResult:
    """The pair (x, p): an allocation and the associated payments."""

    allocation: Allocation
    payments: Payments

    @staticmethod
    def empty() -> "AuctionResult":
        return AuctionResult(Allocation.empty(), Payments.zero())


class AllocationAlgorithm(abc.ABC):
    """Interface of the allocation algorithm ``A`` simulated by the framework.

    An algorithm must be a deterministic function of ``(bids, rng)``: all randomness
    is drawn from the supplied generator, so that every provider simulating ``A``
    with the same agreed seed computes the same result (this is how the common coin
    is consumed — see :mod:`repro.core.allocator`).
    """

    #: Human-readable mechanism name.
    name: str = "abstract"
    #: True for double auctions where providers submit asks (costs).
    requires_provider_bids: bool = False
    #: True if users must be served entirely by one provider or not at all.
    single_provider_allocation: bool = False

    @abc.abstractmethod
    def run(self, bids: BidVector, rng: Optional[random.Random] = None) -> AuctionResult:
        """Execute the auction on ``bids`` and return allocation and payments."""

    def check(self, bids: BidVector, result: AuctionResult) -> None:
        """Validate a result against the mechanism's feasibility constraints."""
        result.allocation.check_feasible(
            bids, single_provider=self.single_provider_allocation
        )
