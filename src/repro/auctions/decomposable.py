"""Interface for mechanisms whose execution can be decomposed into parallel tasks.

Algorithm 1 of the paper splits the standard auction into three steps: (1) compute
the allocation, (2) compute the payment of every user — independent per user and
therefore parallelisable across groups of providers — and (3) gather the results.
The parallel allocator (:mod:`repro.core.allocator`) can run *any* mechanism that
exposes this structure; the interface below is what it needs.

All methods must be deterministic functions of their arguments (including the seed),
because different provider groups independently recompute pieces of the result and the
data-transfer block aborts if they disagree.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Tuple

from repro.auctions.base import Allocation, AuctionResult, BidVector, Payments

__all__ = ["DecomposableMechanism"]


class DecomposableMechanism(abc.ABC):
    """A mechanism that exposes the allocation / per-user payments / assemble split."""

    @abc.abstractmethod
    def solve_allocation(self, bids: BidVector, seed: int) -> Tuple[Allocation, float]:
        """Step 1: compute the allocation (and its declared social welfare)."""

    @abc.abstractmethod
    def payments_for_users(
        self,
        bids: BidVector,
        user_ids: Sequence[str],
        allocation: Allocation,
        welfare: float,
        seed: int,
    ) -> Dict[str, float]:
        """Step 2: compute the payments of a subset of users, given the allocation."""

    @abc.abstractmethod
    def assemble(
        self,
        bids: BidVector,
        allocation: Allocation,
        user_payments: Dict[str, float],
    ) -> AuctionResult:
        """Step 3: combine the allocation and all payment fragments into the result."""
