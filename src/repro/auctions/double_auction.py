"""Truthful, budget-balanced double auction for divisible bandwidth (§5.2.1).

This is the reproduction of the double-auction allocation algorithm the paper takes
from Zheng et al. ("STAR: Strategy-Proof Double Auctions for Multi-Cloud, Multi-Tenant
Bandwidth Reservation"): providers are ordered by increasing declared unit cost, users
by decreasing declared unit value, and users are allocated to providers with the
*water-filling* method.  Truthfulness and budget balance are obtained with a McAfee
style *trade reduction*: the marginal (lowest-value) trading user and the marginal
(highest-cost) trading provider are excluded from the trade, and their declared
value/cost become the uniform unit prices charged to the remaining winners — prices
that are, by construction, independent of the winners' own bids.

Properties (see also the test suite):

* **feasible** — never exceeds provider capacities or user demands;
* **budget balanced** — the buyer price is at least the seller price, so users pay at
  least what providers receive;
* **individually rational** — winners pay at most their declared value per unit and
  providers receive at least their declared cost per unit;
* **truthful** — the per-unit prices faced by a winner do not depend on its own bid
  (the mechanism trades maximal social welfare for this, exactly the trade-off the
  paper describes).

The algorithm is a couple of sorts plus a linear scan, which is why the paper uses it
to measure the *communication* overhead of the distributed simulation (Figure 4): the
computation itself is negligible, so any slowdown of the distributed version is pure
coordination cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.auctions.base import (
    Allocation,
    AllocationAlgorithm,
    AuctionResult,
    BidVector,
    Payments,
    ProviderAsk,
    UserBid,
)
from repro.auctions.validation import is_valid_provider_ask, is_valid_user_bid

__all__ = ["DoubleAuction"]

_EPS = 1e-12


@dataclass(frozen=True)
class _TradeSet:
    """Outcome of the efficient water-filling pass."""

    traded_quantity: float
    #: per-user traded amount in the efficient (pre-reduction) solution
    user_amounts: Dict[str, float]
    #: per-provider traded amount in the efficient (pre-reduction) solution
    provider_amounts: Dict[str, float]
    #: id of the marginal (lowest-value) trading user, if any
    marginal_user: Optional[str]
    #: id of the marginal (highest-cost) trading provider, if any
    marginal_provider: Optional[str]


class DoubleAuction(AllocationAlgorithm):
    """McAfee-style double auction with water-filling for divisible bandwidth."""

    name = "double-auction-waterfill"
    requires_provider_bids = True
    single_provider_allocation = False

    def run(self, bids: BidVector, rng: Optional[random.Random] = None) -> AuctionResult:
        buyers = self._eligible_buyers(bids)
        sellers = self._eligible_sellers(bids)
        if not buyers or not sellers:
            return AuctionResult.empty()

        trades = self._efficient_trades(buyers, sellers)
        if trades.traded_quantity <= _EPS or trades.marginal_user is None:
            return AuctionResult.empty()

        buyer_price = bids.user(trades.marginal_user).unit_value
        seller_price = bids.provider(trades.marginal_provider).unit_cost

        winning_buyers = [
            b for b in buyers
            if b.user_id in trades.user_amounts and b.user_id != trades.marginal_user
        ]
        winning_sellers = [
            s for s in sellers
            if s.provider_id in trades.provider_amounts
            and s.provider_id != trades.marginal_provider
        ]
        if not winning_buyers or not winning_sellers:
            return AuctionResult.empty()

        allocation = self._ration_and_match(winning_buyers, winning_sellers)
        if allocation.is_empty():
            return AuctionResult.empty()

        user_payments = {
            user_id: buyer_price * allocation.user_total(user_id)
            for user_id in allocation.winners()
        }
        provider_revenues = {
            provider_id: seller_price * allocation.provider_total(provider_id)
            for provider_id in allocation.providers_used()
        }
        return AuctionResult(
            allocation, Payments.from_dicts(user_payments, provider_revenues)
        )

    # -- pieces ---------------------------------------------------------------
    @staticmethod
    def _eligible_buyers(bids: BidVector) -> List[UserBid]:
        buyers = [
            bid for bid in bids.users
            if is_valid_user_bid(bid) and bid.unit_value > 0 and bid.demand > _EPS
        ]
        # Decreasing value; deterministic tie-break on the id.
        return sorted(buyers, key=lambda b: (-b.unit_value, b.user_id))

    @staticmethod
    def _eligible_sellers(bids: BidVector) -> List[ProviderAsk]:
        sellers = [
            ask for ask in bids.providers
            if is_valid_provider_ask(ask) and ask.capacity > _EPS
        ]
        # Increasing cost; deterministic tie-break on the id.
        return sorted(sellers, key=lambda s: (s.unit_cost, s.provider_id))

    @staticmethod
    def _efficient_trades(buyers: List[UserBid], sellers: List[ProviderAsk]) -> _TradeSet:
        """Walk the demand and supply curves simultaneously.

        Quantity is traded as long as the current buyer's unit value strictly exceeds
        the current seller's unit cost; the last buyer and seller that trade any
        quantity are the marginal participants excluded by the trade reduction.
        """
        user_amounts: Dict[str, float] = {}
        provider_amounts: Dict[str, float] = {}
        traded = 0.0
        i = j = 0
        remaining_demand = buyers[0].demand if buyers else 0.0
        remaining_capacity = sellers[0].capacity if sellers else 0.0
        marginal_user: Optional[str] = None
        marginal_provider: Optional[str] = None

        while i < len(buyers) and j < len(sellers):
            buyer, seller = buyers[i], sellers[j]
            if buyer.unit_value <= seller.unit_cost:
                break
            quantity = min(remaining_demand, remaining_capacity)
            if quantity > _EPS:
                traded += quantity
                user_amounts[buyer.user_id] = user_amounts.get(buyer.user_id, 0.0) + quantity
                provider_amounts[seller.provider_id] = (
                    provider_amounts.get(seller.provider_id, 0.0) + quantity
                )
                marginal_user = buyer.user_id
                marginal_provider = seller.provider_id
            remaining_demand -= quantity
            remaining_capacity -= quantity
            if remaining_demand <= _EPS:
                i += 1
                remaining_demand = buyers[i].demand if i < len(buyers) else 0.0
            if remaining_capacity <= _EPS:
                j += 1
                remaining_capacity = sellers[j].capacity if j < len(sellers) else 0.0

        return _TradeSet(traded, user_amounts, provider_amounts, marginal_user, marginal_provider)

    @staticmethod
    def _ration_and_match(buyers: List[UserBid], sellers: List[ProviderAsk]) -> Allocation:
        """Ration the reduced trade among winners and match it by water-filling.

        The traded quantity after the trade reduction is
        ``Q' = min(total winner demand, total winning-seller capacity)``.  If one side
        is short, the other side is rationed *proportionally* (to demand on the buyer
        side, to capacity on the seller side) — a bid-independent rule, so no winner
        can increase the quantity it trades by exaggerating its bid.  The resulting
        per-buyer quantities are then placed onto the per-seller quantities with the
        water-filling method of §5.2.1 (the matching itself does not affect prices or
        quantities, only which pipe the bandwidth flows through).
        """
        total_demand = sum(b.demand for b in buyers)
        total_capacity = sum(s.capacity for s in sellers)
        traded = min(total_demand, total_capacity)
        if traded <= _EPS:
            return Allocation.empty()
        buyer_share = traded / total_demand
        seller_share = traded / total_capacity
        buyer_quota = {b.user_id: b.demand * buyer_share for b in buyers}
        seller_quota = {s.provider_id: s.capacity * seller_share for s in sellers}

        amounts: Dict[Tuple[str, str], float] = {}
        seller_order = [s.provider_id for s in sellers]
        cursor = 0
        for buyer in buyers:
            remaining = buyer_quota[buyer.user_id]
            while remaining > _EPS and cursor < len(seller_order):
                provider_id = seller_order[cursor]
                available = seller_quota[provider_id]
                if available <= _EPS:
                    cursor += 1
                    continue
                take = min(remaining, available)
                amounts[(buyer.user_id, provider_id)] = (
                    amounts.get((buyer.user_id, provider_id), 0.0) + take
                )
                seller_quota[provider_id] -= take
                remaining -= take
        return Allocation.from_dict(amounts)
