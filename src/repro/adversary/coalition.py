"""Coalitions: apply a deviating implementation to a chosen set of providers.

The k-resilience notion of the paper quantifies over *coalitions* ``K`` of at most
``k`` providers that jointly switch to an arbitrary protocol.  In the simulator a
coalition is simply a set of provider ids plus a factory that builds the deviating
node for members, while non-members keep the honest implementation.  The resulting
factory plugs directly into :meth:`repro.core.framework.DistributedAuctioneer.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable

from repro.core.provider_protocol import FrameworkProviderNode

__all__ = ["Coalition", "coalition_node_factory"]

#: Signature shared by the honest node constructor and deviating node constructors:
#: (provider_input, algorithm, config, expected_users, providers) -> Node.
NodeFactory = Callable[..., object]


@dataclass(frozen=True)
class Coalition:
    """A set of colluding providers and the deviation they jointly run.

    Attributes:
        members: ids of the colluding providers.
        deviant_factory: constructor used for members (same signature as the honest
            :class:`~repro.core.provider_protocol.FrameworkProviderNode`).
    """

    members: FrozenSet[str]
    deviant_factory: NodeFactory

    @staticmethod
    def of(members: Iterable[str], deviant_factory: NodeFactory) -> "Coalition":
        return Coalition(frozenset(members), deviant_factory)

    @property
    def size(self) -> int:
        return len(self.members)

    def factory(self) -> NodeFactory:
        """The node factory to pass to ``DistributedAuctioneer.run(node_factory=...)``."""
        return coalition_node_factory(self)


def coalition_node_factory(coalition: Coalition) -> NodeFactory:
    """Build a node factory: deviant nodes for members, honest nodes for the rest."""

    def factory(provider_input, algorithm, config, expected_users, providers):
        if provider_input.provider_id in coalition.members:
            return coalition.deviant_factory(
                provider_input, algorithm, config, expected_users, providers
            )
        return FrameworkProviderNode(
            provider_input, algorithm, config, expected_users, providers
        )

    return factory
