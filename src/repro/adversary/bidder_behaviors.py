"""Misbehaving bidder strategies (Section 3.2: "bidders may adopt arbitrary behaviours").

Each strategy implements :class:`~repro.runtime.bidder.BidderStrategy` and can be
attached to any user in an :class:`~repro.runtime.auction_run.AuctionRun`.  The bid
agreement must neutralise all of them: an inconsistent bidder ends up with one of the
bids it sent (or a neutral bid), an invalid or silent bidder ends up with the neutral
bid, and — critically — the bids of *correct* users are never affected (validity).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.auctions.base import UserBid
from repro.runtime.bidder import BidderStrategy

__all__ = ["InconsistentBidder", "SilentBidder", "InvalidBidder", "ScalingBidder"]


class InconsistentBidder(BidderStrategy):
    """Sends a different bid to each provider (equivocation at the bidding layer).

    The bid sent to provider ``i`` (in sorted order) has its unit value scaled by
    ``factors[i % len(factors)]``, so no two providers necessarily see the same bid.
    """

    def __init__(self, factors: Sequence[float] = (0.5, 1.0, 1.5, 2.0)) -> None:
        if not factors:
            raise ValueError("need at least one scaling factor")
        self.factors = tuple(factors)
        self._assigned: dict = {}

    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        index = self._assigned.setdefault(provider_id, len(self._assigned))
        factor = self.factors[index % len(self.factors)]
        return true_bid.with_unit_value(true_bid.unit_value * factor)


class SilentBidder(BidderStrategy):
    """Never submits anything; the provider substitutes ⊥ and then a neutral bid."""

    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        return None


class InvalidBidder(BidderStrategy):
    """Submits structurally broken payloads (wrong type, non-finite numbers)."""

    def __init__(self, payload: Any = "not-a-bid") -> None:
        self.payload = payload

    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        return self.payload


class ScalingBidder(BidderStrategy):
    """Consistently misreports its value by a multiplicative factor (to all providers).

    This is the canonical *lying* bidder used by the truthfulness checks: it sends the
    same (untruthful) bid everywhere, so the bid agreement preserves it and the
    mechanism's incentive properties are what protects the outcome.
    """

    def __init__(self, factor: float) -> None:
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self.factor = factor

    def bid_for_provider(self, true_bid: UserBid, provider_id: str) -> Optional[Any]:
        return true_bid.with_unit_value(true_bid.unit_value * self.factor)
