"""Adversarial behaviours for bidders and provider coalitions.

The paper's guarantees are of two kinds: (i) bidders may behave arbitrarily — submit
different bids to different providers, submit garbage, or stay silent — and the
simulation still computes a correct outcome over the valid bids; (ii) coalitions of up
to ``k`` *providers* cannot gain by deviating from the protocol (k-resilient
equilibrium), and observable deviations drive the outcome to ⊥.

This package provides reusable implementations of those misbehaviours so the test
suite and the :mod:`repro.gametheory` harness can exercise them:

* :mod:`repro.adversary.bidder_behaviors` — strategies plugged into
  :class:`~repro.runtime.bidder.BidderNode`.
* :mod:`repro.adversary.provider_behaviors` — deviating provider nodes built by
  wrapping the honest protocol with message tampering, omission, input forgery or
  output manipulation.
* :mod:`repro.adversary.coalition` — helpers to apply a deviation to a chosen set of
  providers inside a :class:`~repro.core.framework.DistributedAuctioneer` simulation.
"""

from repro.adversary.bidder_behaviors import (
    InconsistentBidder,
    InvalidBidder,
    ScalingBidder,
    SilentBidder,
)
from repro.adversary.coalition import Coalition, coalition_node_factory
from repro.adversary.provider_behaviors import (
    CrashingProviderNode,
    EquivocatingProviderNode,
    InputForgingProviderNode,
    MessageDroppingProviderNode,
    OutputTamperingProviderNode,
)

__all__ = [
    "Coalition",
    "CrashingProviderNode",
    "EquivocatingProviderNode",
    "InconsistentBidder",
    "InputForgingProviderNode",
    "InvalidBidder",
    "MessageDroppingProviderNode",
    "OutputTamperingProviderNode",
    "ScalingBidder",
    "SilentBidder",
    "coalition_node_factory",
]
