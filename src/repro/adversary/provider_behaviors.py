"""Deviating provider implementations used to probe k-resilience.

All deviations are built around the honest
:class:`~repro.core.provider_protocol.FrameworkProviderNode` so that the deviation is
exactly one well-identified departure from the protocol:

* :class:`InputForgingProviderNode` — lies about the bids it received (feeds a forged
  vector into the bid agreement).
* :class:`EquivocatingProviderNode` — sends different payloads to different peers for
  selected protocol messages.
* :class:`MessageDroppingProviderNode` — omits selected protocol messages.
* :class:`CrashingProviderNode` — stops participating after a number of sends.
* :class:`OutputTamperingProviderNode` — runs the protocol honestly but announces a
  doctored output (e.g. inflating its own revenue).

The expected consequences, which the resilience tests assert, are those of the
paper's analysis: observable deviations drive correct providers to ⊥ (so nobody —
including the deviator — gets paid), and unobservable ones cannot change the outcome
of the correct providers except towards ⊥.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, AuctionResult, Payments
from repro.core.config import FrameworkConfig
from repro.core.provider_protocol import FrameworkProviderNode, ProviderInput
from repro.net.message import Message
from repro.net.node import NodeContext

__all__ = [
    "DeviantProviderNode",
    "InputForgingProviderNode",
    "EquivocatingProviderNode",
    "MessageDroppingProviderNode",
    "CrashingProviderNode",
    "OutputTamperingProviderNode",
]


class _TamperingContext(NodeContext):
    """A NodeContext that lets the owning node rewrite or drop outgoing messages."""

    def __init__(self, inner: NodeContext, owner: "DeviantProviderNode") -> None:
        self._inner = inner
        self._owner = owner

    @property
    def node_id(self) -> str:
        return self._inner.node_id

    @property
    def peers(self) -> Sequence[str]:
        return self._inner.peers

    @property
    def rng(self) -> random.Random:
        return self._inner.rng

    def now(self) -> float:
        return self._inner.now()

    def charge(self, seconds: float) -> None:
        self._inner.charge(seconds)

    def set_timer(self, delay: float, tag: str) -> None:
        self._inner.set_timer(delay, tag)

    def send(self, recipient: str, payload: Any, tag: str = "") -> None:
        decision = self._owner.transform_send(recipient, payload, tag)
        if decision is None:
            return
        new_payload, new_tag = decision
        self._inner.send(recipient, new_payload, tag=new_tag)


class DeviantProviderNode(FrameworkProviderNode):
    """Base class: an honest provider whose outgoing messages pass through a filter.

    Subclasses override :meth:`transform_send` (return ``None`` to drop the message,
    or a ``(payload, tag)`` pair to forward something — possibly different from what
    the protocol intended).
    """

    def on_start(self, ctx: NodeContext) -> None:
        super().on_start(_TamperingContext(ctx, self))

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        super().on_message(_TamperingContext(ctx, self), message)

    def transform_send(self, recipient: str, payload: Any, tag: str):
        """Default: behave honestly."""
        return payload, tag


class InputForgingProviderNode(FrameworkProviderNode):
    """Feeds a forged view of the received bids into the protocol.

    Args:
        forge: a function rewriting the provider's input before the protocol starts
            (for instance, dropping a competitor's bid or inflating one).
    """

    def __init__(
        self,
        provider_input: ProviderInput,
        algorithm: AllocationAlgorithm,
        config: FrameworkConfig,
        expected_users: Sequence[str],
        providers: Sequence[str],
        forge: Callable[[ProviderInput], ProviderInput],
    ) -> None:
        super().__init__(forge(provider_input), algorithm, config, expected_users, providers)


class EquivocatingProviderNode(DeviantProviderNode):
    """Sends a corrupted payload to a subset of peers for matching protocol messages.

    Args:
        tag_substring: only messages whose tag contains this substring are affected
            (default ``"|value"`` — the first round of agreement blocks).
        victim_fraction: fraction of the peer set (by sorted order) receiving the
            corrupted variant.
        corrupt: payload rewriting function; the default replaces the payload with a
            recognisable sentinel, which is enough to create disagreement.
    """

    def __init__(
        self,
        *args,
        tag_substring: str = "|value",
        victim_fraction: float = 0.5,
        corrupt: Optional[Callable[[Any], Any]] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.tag_substring = tag_substring
        self.victim_fraction = victim_fraction
        self.corrupt = corrupt if corrupt is not None else (lambda payload: "equivocated")

    def _victims(self) -> set:
        peers = sorted(p for p in self.participants if p != self.node_id)
        count = max(1, int(len(peers) * self.victim_fraction)) if peers else 0
        return set(peers[:count])

    def transform_send(self, recipient: str, payload: Any, tag: str):
        if self.tag_substring in tag and recipient in self._victims():
            return self.corrupt(payload), tag
        return payload, tag


class MessageDroppingProviderNode(DeviantProviderNode):
    """Omits protocol messages whose tag contains a given substring.

    Dropping messages cannot corrupt the outcome — it can only prevent termination at
    other providers, which the outcome combination treats as ⊥.
    """

    def __init__(self, *args, tag_substring: str = "|echo", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.tag_substring = tag_substring

    def transform_send(self, recipient: str, payload: Any, tag: str):
        if self.tag_substring in tag:
            return None
        return payload, tag


class CrashingProviderNode(DeviantProviderNode):
    """Participates honestly for a while, then stops sending anything at all."""

    def __init__(self, *args, max_sends: int = 5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.max_sends = max_sends
        self._sent = 0

    def transform_send(self, recipient: str, payload: Any, tag: str):
        if self._sent >= self.max_sends:
            return None
        self._sent += 1
        return payload, tag


class OutputTamperingProviderNode(FrameworkProviderNode):
    """Runs the protocol honestly but reports a doctored result as its output.

    The default doctoring inflates the provider's own revenue by ``bonus``.  Because
    the other providers output the honest pair, the combined outcome (Definition 1)
    becomes ⊥ — the deviation is unprofitable, which is what the resilience tests
    verify.
    """

    def __init__(self, *args, bonus: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bonus = bonus

    def _on_root_done(self, block) -> None:  # type: ignore[override]
        result = block.result
        if isinstance(result, AuctionResult):
            revenues = dict(result.payments.provider_revenues)
            revenues[self.node_id] = revenues.get(self.node_id, 0.0) + self.bonus
            result = AuctionResult(
                result.allocation,
                Payments(
                    result.payments.user_payments,
                    tuple(sorted(revenues.items())),
                ),
            )
        self.finish(result)
