"""The per-provider protocol: bid agreement chained with an allocator (Figure 1).

:class:`FrameworkBlock` is the root protocol block each provider runs: it feeds the
bids the provider received into the bid agreement, hands the agreed vector to the
configured allocator, and outputs the allocator's result — an
:class:`~repro.auctions.base.AuctionResult` or ⊥.  :class:`FrameworkProviderNode`
wraps the block as a ready-to-run :class:`~repro.net.node.Node` for simulations where
bid collection has already happened out of band (the
:mod:`repro.runtime` package provides the fuller version with on-line bid collection
and deadlines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.auctions.base import AllocationAlgorithm, BidVector, ProviderAsk
from repro.auctions.decomposable import DecomposableMechanism
from repro.common import ABORT, is_abort
from repro.core.allocator import ParallelAllocatorBlock, SequentialAllocatorBlock
from repro.core.bid_agreement import BidAgreementBlock
from repro.core.config import FrameworkConfig
from repro.core.task_graph import build_standard_auction_graph
from repro.net.protocol import BlockContext, ProtocolBlock, ProtocolNode

__all__ = ["ProviderInput", "FrameworkBlock", "FrameworkProviderNode"]


@dataclass
class ProviderInput:
    """Everything one provider knows when the simulation starts.

    Attributes:
        provider_id: this provider's id.
        received_user_bids: mapping user id -> bid received from that user (``None``
            or garbage for users that sent nothing usable).
        received_provider_asks: mapping provider id -> ask as known to this provider.
            At minimum it contains this provider's own ask; in the double auction it
            also contains the asks the other providers distributed as bidders.
    """

    provider_id: str
    received_user_bids: Dict[str, Any] = field(default_factory=dict)
    received_provider_asks: Dict[str, Any] = field(default_factory=dict)

    def with_own_ask(self, ask: ProviderAsk) -> "ProviderInput":
        asks = dict(self.received_provider_asks)
        asks[self.provider_id] = ask
        return ProviderInput(self.provider_id, dict(self.received_user_bids), asks)


class FrameworkBlock(ProtocolBlock):
    """Chain the bid agreement and the allocator at one provider."""

    def __init__(
        self,
        name: str,
        provider_input: ProviderInput,
        algorithm: AllocationAlgorithm,
        config: FrameworkConfig,
        expected_users: Sequence[str],
        providers: Sequence[str],
    ) -> None:
        super().__init__(name)
        self.provider_input = provider_input
        self.algorithm = algorithm
        self.config = config
        self.expected_users = sorted(expected_users)
        self.providers = sorted(providers)
        #: True when the bid agreement closed a round on a timeout quorum.
        self.degraded = False
        self._ctx: Optional[BlockContext] = None

    # -- protocol -------------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        self._ctx = ctx
        # The providers *executing* the protocol may be only a subset of the sellers
        # whose asks take part in the auction (the paper's Figure 4 runs the protocol
        # on the minimum 2k+1 providers out of m=8).  Ask labels therefore cover
        # every provider an ask is known for, plus the executors themselves.
        sellers = sorted(
            set(self.providers) | set(self.provider_input.received_provider_asks.keys())
        )
        ctx.spawn(
            "ba",
            BidAgreementBlock(
                "ba",
                expected_users=self.expected_users,
                expected_providers=sellers,
                received_user_bids=self.provider_input.received_user_bids,
                received_provider_asks=self.provider_input.received_provider_asks,
                mode=self.config.agreement_mode,
                round_timeout=self.config.round_timeout,
            ),
            self._on_agreement_done,
        )

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        return None  # all traffic flows through the child blocks

    # -- chaining -------------------------------------------------------------------
    def _on_agreement_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        bids: BidVector = block.result
        assert self._ctx is not None
        if self.config.parallel and isinstance(self.algorithm, DecomposableMechanism):
            graph = build_standard_auction_graph(
                self.algorithm,
                bids,
                self.providers,
                self.config.k,
                self.config.num_groups,
            )
            allocator: ProtocolBlock = ParallelAllocatorBlock(
                "alloc",
                bids,
                graph,
                use_common_coin=self.config.use_common_coin,
                round_timeout=self.config.round_timeout,
            )
        else:
            allocator = SequentialAllocatorBlock(
                "alloc",
                bids,
                self.algorithm,
                use_common_coin=self.config.use_common_coin,
                round_timeout=self.config.round_timeout,
            )
        self._ctx.spawn("alloc", allocator, self._on_allocator_done)

    def _on_allocator_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        self.complete(block.result)


class FrameworkProviderNode(ProtocolNode):
    """A provider node that runs the framework once, with pre-collected bids."""

    def __init__(
        self,
        provider_input: ProviderInput,
        algorithm: AllocationAlgorithm,
        config: FrameworkConfig,
        expected_users: Sequence[str],
        providers: Sequence[str],
    ) -> None:
        super().__init__(
            node_id=provider_input.provider_id,
            participants=sorted(providers),
            root_name="framework",
            root_factory=lambda: FrameworkBlock(
                "framework",
                provider_input,
                algorithm,
                config,
                expected_users,
                providers,
            ),
        )
