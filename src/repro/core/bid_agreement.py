"""Bid agreement block (Property 1 of the paper).

Every bidder is expected to submit its bid to *all* providers, but bidders may be
faulty or malicious: they can send different bids to different providers, send
garbage, or send nothing.  Before the allocation algorithm can be simulated, the
providers must therefore agree on a single vector of bids such that

* **eventual agreement** — all providers output the same vector, and
* **validity** — a bidder that sent the same bid to every provider sees exactly that
  bid in the agreed vector.

The paper implements this on top of the rational consensus of Afek et al., one binary
consensus instance per bit of a per-bidder bit stream.  This block supports that
faithful mode (``per_bit``), a per-bidder mode (one consensus instance per bidder,
``per_label``), and a batched mode (``batched``, the default) in which all instances
share two broadcast/echo rounds — the message pattern a real deployment uses, and the
one the benchmark harness exercises.  All three modes produce identical outputs when
they terminate.

Whatever a bidder's misbehaviour, the agreed value for it is post-processed by the
validity rule of §4.1: an invalid or missing bid is replaced by a pre-determined
neutral bid that excludes the bidder from the auction.

In the double auction the providers are bidders too (they submit asks); their asks
travel through the same agreement under ``ask:`` labels.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.validation import (
    coerce_user_bid,
    is_valid_provider_ask,
    neutral_provider_ask,
    neutral_user_bid,
)
from repro.common import ABORT, is_abort
from repro.consensus.bit_encoding import BID_BIT_LENGTH, bid_to_bits, bits_to_bid
from repro.consensus.multi_consensus import BatchedConsensusBlock
from repro.consensus.rational_consensus import BinaryConsensusBlock, RationalConsensusBlock
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["BidAgreementBlock", "AGREEMENT_MODES"]

AGREEMENT_MODES = ("batched", "per_label", "per_bit")

_USER_PREFIX = "user:"
_ASK_PREFIX = "ask:"


class BidAgreementBlock(ProtocolBlock):
    """Agree on a :class:`~repro.auctions.base.BidVector` starting from local views.

    Args:
        name: block name.
        expected_users: ids of the users that may participate (the label set).
        expected_providers: ids of all providers (their asks are agreed as well).
        received_user_bids: mapping user id -> the bid this provider received from
            that user (or ``None`` / anything invalid if nothing usable arrived).
        received_provider_asks: mapping provider id -> the ask this provider received
            (its own ask included).
        mode: ``"batched"`` (default), ``"per_label"`` or ``"per_bit"``.
        round_timeout: per-round virtual-time budget for the batched mode (see
            :class:`~repro.consensus.multi_consensus.BatchedConsensusBlock`);
            ignored by the faithful per-label/per-bit modes.
    """

    def __init__(
        self,
        name: str,
        expected_users: Sequence[str],
        expected_providers: Sequence[str],
        received_user_bids: Mapping[str, Any],
        received_provider_asks: Mapping[str, Any],
        mode: str = "batched",
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        if mode not in AGREEMENT_MODES:
            raise ValueError(f"unknown agreement mode {mode!r}; choose from {AGREEMENT_MODES}")
        self.mode = mode
        self.round_timeout = round_timeout
        #: True when the underlying consensus closed a round on a partial quorum.
        self.degraded = False
        self.expected_users = sorted(expected_users)
        self.expected_providers = sorted(expected_providers)
        self.received_user_bids = dict(received_user_bids)
        self.received_provider_asks = dict(received_provider_asks)
        self._decisions: Dict[str, Any] = {}
        self._pending = 0

    # -- label helpers -------------------------------------------------------------
    def _labels(self) -> List[str]:
        return [f"{_USER_PREFIX}{uid}" for uid in self.expected_users] + [
            f"{_ASK_PREFIX}{pid}" for pid in self.expected_providers
        ]

    def _my_inputs(self) -> Dict[str, Any]:
        inputs: Dict[str, Any] = {}
        for uid in self.expected_users:
            inputs[f"{_USER_PREFIX}{uid}"] = self.received_user_bids.get(uid)
        for pid in self.expected_providers:
            inputs[f"{_ASK_PREFIX}{pid}"] = self.received_provider_asks.get(pid)
        return inputs

    # -- protocol -------------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        if self.mode == "batched":
            ctx.spawn(
                "batch",
                BatchedConsensusBlock(
                    "batch",
                    self._my_inputs(),
                    labels=self._labels(),
                    round_timeout=self.round_timeout,
                ),
                self._on_batch_done,
            )
        elif self.mode == "per_label":
            inputs = self._my_inputs()
            self._pending = len(inputs)
            for label, value in sorted(inputs.items()):
                ctx.spawn(
                    label,
                    RationalConsensusBlock(label, value),
                    self._make_label_callback(label),
                )
        else:  # per_bit
            self._start_per_bit(ctx)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        # All traffic flows through child blocks; nothing is addressed to this block
        # directly.
        return None

    # -- batched mode -----------------------------------------------------------------
    def _on_batch_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        self._decisions = dict(block.result)
        self._assemble()

    # -- per-label mode -----------------------------------------------------------------
    def _make_label_callback(self, label: str):
        def callback(block: ProtocolBlock) -> None:
            if self.done:
                return
            if is_abort(block.result):
                self.complete(ABORT)
                return
            self._decisions[label] = block.result
            self._pending -= 1
            if self._pending == 0:
                self._assemble()

        return callback

    # -- per-bit mode -----------------------------------------------------------------
    def _start_per_bit(self, ctx: BlockContext) -> None:
        """One binary consensus instance per bit of each user bid (§4.1, faithful mode).

        Provider asks still go through per-label consensus: the paper's bit-stream
        construction targets the (user) bidders, whose bids are the adversarial
        input, while the ask of a provider is that provider's own protocol input.
        """
        self._bit_results: Dict[str, List[Optional[int]]] = {}
        # Set the pending counter *before* spawning: a child block can complete
        # synchronously during activation (its peers' traffic may already be
        # buffered), and its callback decrements the counter.
        self._pending = len(self.expected_users) * BID_BIT_LENGTH + len(self.expected_providers)
        for uid in self.expected_users:
            received = self.received_user_bids.get(uid)
            bid = coerce_user_bid(uid, received)
            bits = bid_to_bits(bid.unit_value, bid.demand)
            self._bit_results[uid] = [None] * BID_BIT_LENGTH
            for position, bit in enumerate(bits):
                if self.done:
                    return
                block_name = f"{_USER_PREFIX}{uid}/bit{position:03d}"
                ctx.spawn(
                    block_name,
                    BinaryConsensusBlock(block_name, bit),
                    self._make_bit_callback(uid, position),
                )
        for pid in self.expected_providers:
            if self.done:
                return
            label = f"{_ASK_PREFIX}{pid}"
            ctx.spawn(
                label,
                RationalConsensusBlock(label, self.received_provider_asks.get(pid)),
                self._make_label_callback(label),
            )

    def _make_bit_callback(self, uid: str, position: int):
        def callback(block: ProtocolBlock) -> None:
            if self.done:
                return
            if is_abort(block.result):
                self.complete(ABORT)
                return
            self._bit_results[uid][position] = block.result
            self._pending -= 1
            if all(b is not None for b in self._bit_results[uid]):
                unit_value, demand = bits_to_bid(self._bit_results[uid])
                self._decisions[f"{_USER_PREFIX}{uid}"] = UserBid(uid, unit_value, demand)
            if self._pending == 0:
                self._assemble()

        return callback

    # -- assembly ---------------------------------------------------------------------
    def _assemble(self) -> None:
        """Apply the validity rule and build the agreed bid vector."""
        if self.done:
            return
        users = []
        for uid in self.expected_users:
            decided = self._decisions.get(f"{_USER_PREFIX}{uid}")
            users.append(coerce_user_bid(uid, decided))
        providers = []
        for pid in self.expected_providers:
            decided = self._decisions.get(f"{_ASK_PREFIX}{pid}")
            if is_valid_provider_ask(decided) and decided.provider_id == pid:
                providers.append(decided)
            else:
                providers.append(neutral_provider_ask(pid))
        self.complete(BidVector(tuple(users), tuple(providers)))
