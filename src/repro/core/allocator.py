"""Allocator blocks: simulate the allocation algorithm ``A`` (Property 2 of the paper).

Two implementations are provided, matching the two regimes the paper evaluates:

* :class:`SequentialAllocatorBlock` — input validation, one common-coin invocation to
  agree on the random seed, then every provider runs ``A`` locally on the agreed
  input.  This is the right choice when ``A`` is cheap (the double auction of
  §5.2.1): the framework's overhead is pure coordination, which is exactly what
  Figure 4 measures.

* :class:`ParallelAllocatorBlock` — the parallel allocator framework of §4.2
  (Figure 3): after input validation and the common coin, the execution of ``A`` is
  decomposed into a :class:`~repro.core.task_graph.TaskGraph`; each task runs on a
  group of at least ``k + 1`` providers, results move between groups through
  :class:`~repro.core.data_transfer.DataTransferBlock` instances, and a final task
  executed by every provider assembles the output pair (x, p).  This is what makes
  the expensive standard auction of §5.2.2 scale (Figure 5).

Both blocks output either an :class:`~repro.auctions.base.AuctionResult` or ⊥.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set

from repro.auctions.base import AllocationAlgorithm, BidVector
from repro.common import ABORT, is_abort
from repro.core.common_coin import CommonCoinBlock
from repro.core.data_transfer import DataTransferBlock
from repro.core.distributions import SeedDistribution
from repro.core.input_validation import InputValidationBlock
from repro.core.task_graph import TaskGraph
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["SequentialAllocatorBlock", "ParallelAllocatorBlock"]


class SequentialAllocatorBlock(ProtocolBlock):
    """Validate inputs, agree on a seed, then run ``A`` locally at every provider.

    Args:
        name: block name.
        bids: the agreed bid vector (output of the bid agreement).
        algorithm: the allocation algorithm ``A``.
        use_common_coin: if True (default), agree on the seed through the common
            coin; if False, use a fixed seed of 0 (only sensible for deterministic
            algorithms — still correct, but skips one round of messages).
        round_timeout: per-round virtual-time budget forwarded to the child
            blocks (validation clears on a partial view, the coin outputs ⊥);
            ``None`` waits forever.
    """

    def __init__(
        self,
        name: str,
        bids: BidVector,
        algorithm: AllocationAlgorithm,
        use_common_coin: bool = True,
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.bids = bids
        self.algorithm = algorithm
        self.use_common_coin = use_common_coin
        self.round_timeout = round_timeout
        #: True when a child block closed a round on a timeout quorum.
        self.degraded = False
        self._ctx: Optional[BlockContext] = None

    def on_start(self, ctx: BlockContext) -> None:
        self._ctx = ctx
        ctx.spawn(
            "iv",
            InputValidationBlock("iv", self.bids, round_timeout=self.round_timeout),
            self._on_iv_done,
        )

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        return None  # all traffic flows through the child blocks

    # -- chaining ------------------------------------------------------------------
    def _on_iv_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        if self.use_common_coin:
            assert self._ctx is not None
            self._ctx.spawn(
                "coin",
                CommonCoinBlock(
                    "coin", SeedDistribution(), round_timeout=self.round_timeout
                ),
                self._on_coin_done,
            )
        else:
            self._execute(seed=0)

    def _on_coin_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        self._execute(seed=int(block.result))

    def _execute(self, seed: int) -> None:
        result = self.algorithm.run(self.bids, random.Random(seed))
        self.complete(result)


class ParallelAllocatorBlock(ProtocolBlock):
    """Execute ``A`` as a task graph distributed over provider groups (Figure 3).

    Args:
        name: block name.
        bids: the agreed bid vector.
        graph: the task decomposition of ``A`` (see
            :func:`repro.core.task_graph.build_standard_auction_graph`).
        use_common_coin: if True (default), one common-coin invocation fixes the seed
            every task derives its randomness from.
        round_timeout: per-round virtual-time budget forwarded to the child
            blocks; ``None`` waits forever.
    """

    def __init__(
        self,
        name: str,
        bids: BidVector,
        graph: TaskGraph,
        use_common_coin: bool = True,
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.bids = bids
        self.graph = graph
        self.use_common_coin = use_common_coin
        self.round_timeout = round_timeout
        #: True when a child block closed a round on a timeout quorum.
        self.degraded = False
        self._ctx: Optional[BlockContext] = None
        self._seed: int = 0
        self._values: Dict[str, Any] = {}
        self._computed: Set[str] = set()
        self._dt_spawned: Set[str] = set()

    # -- graph helpers ----------------------------------------------------------------
    def _receivers_of(self, task_name: str) -> List[str]:
        """Providers that need the result of ``task_name`` but do not compute it."""
        executors = set(self.graph.task(task_name).executors)
        needed_by: Set[str] = set()
        for successor in self.graph.successors(task_name):
            needed_by.update(successor.executors)
        return sorted(needed_by - executors)

    def _i_execute(self, task_name: str, node_id: str) -> bool:
        return node_id in self.graph.task(task_name).executors

    def _i_need(self, task_name: str, node_id: str) -> bool:
        return node_id in self._receivers_of(task_name)

    # -- protocol -----------------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        self._ctx = ctx
        ctx.spawn(
            "iv",
            InputValidationBlock("iv", self.bids, round_timeout=self.round_timeout),
            self._on_iv_done,
        )

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        return None  # all traffic flows through the child blocks

    def _on_iv_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        assert self._ctx is not None
        if self.use_common_coin:
            self._ctx.spawn(
                "coin",
                CommonCoinBlock(
                    "coin", SeedDistribution(), round_timeout=self.round_timeout
                ),
                self._on_coin_done,
            )
        else:
            self._begin_execution(seed=0)

    def _on_coin_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        if is_abort(block.result):
            self.complete(ABORT)
            return
        self._begin_execution(seed=int(block.result))

    # -- task-graph execution -------------------------------------------------------------
    def _begin_execution(self, seed: int) -> None:
        assert self._ctx is not None
        # Derive the task seed the same way AllocationAlgorithm.run derives its
        # internal seed from an RNG seeded with the coin value, so the sequential and
        # parallel allocators produce bit-identical results for the same coin.
        self._seed = random.Random(seed).getrandbits(63)
        me = self._ctx.node_id
        # Register (as a receiver) for the transfers of every task whose result this
        # provider needs but does not compute.  Activating early is safe: traffic that
        # arrives before the senders are ready is buffered by the block host.
        for task_name in self.graph.topological_order():
            if self.done:
                return
            if self._i_need(task_name, me):
                self._spawn_data_transfer(task_name, as_sender=False)
        self._run_ready_tasks()

    def _spawn_data_transfer(self, task_name: str, as_sender: bool) -> None:
        assert self._ctx is not None
        if task_name in self._dt_spawned or self.done:
            return
        receivers = self._receivers_of(task_name)
        if not receivers:
            return
        senders = list(self.graph.task(task_name).executors)
        self._dt_spawned.add(task_name)
        block_name = f"dt:{task_name}"
        kwargs: Dict[str, Any] = {}
        if as_sender:
            kwargs["my_value"] = self._values[task_name]
        self._ctx.spawn(
            block_name,
            DataTransferBlock(
                block_name, senders, receivers, round_timeout=self.round_timeout, **kwargs
            ),
            self._make_dt_callback(task_name),
            participants=sorted(set(senders) | set(receivers)),
        )

    def _make_dt_callback(self, task_name: str):
        def callback(block: ProtocolBlock) -> None:
            if self.done:
                return
            if getattr(block, "degraded", False):
                self.degraded = True
            if is_abort(block.result):
                self.complete(ABORT)
                return
            if task_name not in self._values:
                self._values[task_name] = block.result
            self._run_ready_tasks()

        return callback

    def _run_ready_tasks(self) -> None:
        """Execute every local task whose dependencies are satisfied; repeat to fixpoint."""
        assert self._ctx is not None
        me = self._ctx.node_id
        progressed = True
        while progressed and not self.done:
            progressed = False
            for task_name in self.graph.topological_order():
                if task_name in self._computed or not self._i_execute(task_name, me):
                    continue
                task = self.graph.task(task_name)
                if any(dep not in self._values for dep in task.depends_on):
                    continue
                inputs = {dep: self._values[dep] for dep in task.depends_on}
                self._values[task_name] = task.fn(inputs, self.bids, self._seed)
                self._computed.add(task_name)
                progressed = True
                # Ship the result to the groups that need it.
                self._spawn_data_transfer(task_name, as_sender=True)
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.done:
            return
        final = self.graph.final_task
        if final is not None and final in self._values and final in self._computed:
            self.complete(self._values[final])
