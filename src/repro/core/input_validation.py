"""Input validation block (Property 3 of the paper).

Before the providers simulate the allocation algorithm, they must make sure they are
all starting from the same input vector; otherwise a coalition could feed a doctored
vector to part of the simulation.  The implementation is the simple one the paper
suggests: every provider broadcasts (a digest of) its input vector and outputs ⊥ as
soon as it sees two different vectors; if all inputs match, the block outputs the
input unchanged.

Broadcasting a SHA-256 digest instead of the full vector keeps the message size
constant — the full vectors were already exchanged during bid agreement — without
weakening the detection property in the rational (non-cryptanalytic) threat model.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common import ABORT
from repro.consensus.commitment import CommitmentScheme
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["InputValidationBlock"]


class InputValidationBlock(ProtocolBlock):
    """Broadcast-and-compare validation of the allocator's input vector.

    Args:
        name: block name.
        my_input: this provider's input (any canonically-encodable value).
        full_broadcast: if True, send the full input instead of its digest.  The
            digest mode is the default because it is what a deployment would do; the
            full mode is useful in tests that want to inspect traffic.
        round_timeout: virtual-time budget for the announce round (``None``
            waits forever).  On timeout the cross-check clears with the
            announcements received — a partial check, flagged via
            :attr:`degraded`; any conflict among them is still ⊥.
    """

    ANNOUNCE = "announce"
    TIMER_ANNOUNCE = "round/announce"
    _FIXED_NONCE = b"input-validation"

    def __init__(
        self,
        name: str,
        my_input: Any,
        full_broadcast: bool = False,
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.my_input = my_input
        self.full_broadcast = full_broadcast
        self.round_timeout = round_timeout
        #: True when the announce round closed by timeout with a partial view.
        self.degraded = False
        self._received: Dict[str, Any] = {}

    # -- helpers ------------------------------------------------------------------
    def _fingerprint(self, value: Any) -> Any:
        if self.full_broadcast:
            return value
        return CommitmentScheme.digest_of(value, self._FIXED_NONCE)

    # -- protocol -----------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        fingerprint = self._fingerprint(self.my_input)
        self._received[ctx.node_id] = fingerprint
        ctx.broadcast(fingerprint, subtag=self.ANNOUNCE)
        if self.round_timeout is not None:
            ctx.set_timer(self.round_timeout, self.TIMER_ANNOUNCE)
        self._maybe_finish(ctx)

    def on_timer(self, ctx: BlockContext, subtag: str) -> None:
        if self.done or subtag != self.TIMER_ANNOUNCE:
            return
        # Announce round out of budget: clear with the received cross-checks.
        # Everything received already matched our own fingerprint (a mismatch
        # completes with ⊥ on arrival), so the partial check passes.
        self.degraded = True
        self.complete(self.my_input)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done or subtag != self.ANNOUNCE or sender not in ctx.participants:
            return
        if sender in self._received:
            if self._received[sender] != payload:
                self.complete(ABORT)
            return
        self._received[sender] = payload
        if payload != self._received[ctx.node_id]:
            # Two providers hold different inputs: both must output ⊥ (condition (1)
            # of Property 3), which punishes whoever forged its vector upstream.
            self.complete(ABORT)
            return
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx: BlockContext) -> None:
        if self.done:
            return
        if set(self._received) != set(ctx.participants):
            return
        mine = self._received[ctx.node_id]
        if all(value == mine for value in self._received.values()):
            self.complete(self.my_input)
        else:
            self.complete(ABORT)
