"""The distributed auctioneer framework (the paper's core contribution).

The framework chains two building blocks at every provider (Figure 1 of the paper):

1. :class:`~repro.core.bid_agreement.BidAgreementBlock` — providers agree on a single
   vector of bids starting from the possibly-inconsistent bids each of them received.
2. an allocator — either :class:`~repro.core.allocator.SequentialAllocatorBlock`
   (every provider runs the allocation algorithm locally after validating that all
   inputs match; used for cheap algorithms such as the double auction) or
   :class:`~repro.core.allocator.ParallelAllocatorBlock` (the task-graph execution of
   Figure 3, with input validation, data transfer and common coin sub-blocks; used
   for expensive algorithms such as the standard auction).

:class:`~repro.core.framework.DistributedAuctioneer` packages the whole thing behind
one call: give it the bids each provider received and it simulates the protocol on a
:class:`~repro.net.network.SimNetwork`, returning the outcome (the agreed
allocation/payments pair, or ⊥) together with network statistics.
"""

from repro.core.allocator import ParallelAllocatorBlock, SequentialAllocatorBlock
from repro.core.bid_agreement import BidAgreementBlock
from repro.core.common_coin import CommonCoinBlock
from repro.core.config import FrameworkConfig
from repro.core.data_transfer import DataTransferBlock
from repro.core.distributions import (
    DiscreteDistribution,
    Distribution,
    ExponentialDistribution,
    SeedDistribution,
    UniformDistribution,
)
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer, SimulationReport
from repro.core.input_validation import InputValidationBlock
from repro.core.outcome import ABORT, Outcome
from repro.core.provider_protocol import FrameworkBlock, ProviderInput
from repro.core.task_graph import Task, TaskGraph, build_standard_auction_graph

__all__ = [
    "ABORT",
    "BidAgreementBlock",
    "CentralizedAuctioneer",
    "CommonCoinBlock",
    "DataTransferBlock",
    "DiscreteDistribution",
    "DistributedAuctioneer",
    "Distribution",
    "ExponentialDistribution",
    "FrameworkBlock",
    "FrameworkConfig",
    "InputValidationBlock",
    "Outcome",
    "ParallelAllocatorBlock",
    "ProviderInput",
    "SeedDistribution",
    "SequentialAllocatorBlock",
    "SimulationReport",
    "Task",
    "TaskGraph",
    "UniformDistribution",
    "build_standard_auction_graph",
]
