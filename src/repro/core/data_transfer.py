"""Data transfer block (Property 5 of the paper).

When a task of the parallel allocator is computed by a set ``S`` of providers and its
result is needed by a different set ``O``, the providers of ``S`` broadcast their
(identical, if they are honest) results to the providers of ``O``; a receiver that
sees two different values outputs ⊥.  With ``|S| > k`` no coalition of up to ``k``
providers can make a correct receiver accept a wrong value — at best it can force ⊥,
which solution preference makes unattractive.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.common import ABORT
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["DataTransferBlock"]

_MISSING = object()


class DataTransferBlock(ProtocolBlock):
    """Transfer a value from a sender group ``S`` to a receiver group ``O``.

    Args:
        name: block name.
        senders: provider ids in ``S`` (must all input the same value when honest).
        receivers: provider ids in ``O``.
        my_value: this provider's value, required if (and only if) it is in ``S``.
        round_timeout: virtual-time budget for the transfer (``None`` waits
            forever).  On timeout a receiver accepts the consistent value it
            holds — a *weakened* check flagged via :attr:`degraded` (fewer than
            ``|S|`` confirmations) — or outputs ⊥ if it received nothing or
            saw a conflict.

    Output: at receivers, the transferred value (or ⊥ on any inconsistency); at
    senders that are not receivers, their own value (they already hold it).
    """

    VALUE = "value"
    TIMER_TRANSFER = "round/transfer"

    def __init__(
        self,
        name: str,
        senders: Sequence[str],
        receivers: Sequence[str],
        my_value: Any = _MISSING,
        round_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.senders = list(dict.fromkeys(senders))
        self.receivers = list(dict.fromkeys(receivers))
        if not self.senders:
            raise ValueError("data transfer needs at least one sender")
        self.round_timeout = round_timeout
        #: True when the transfer closed by timeout with partial confirmations.
        self.degraded = False
        self._my_value = my_value
        self._received: Dict[str, Any] = {}

    # -- roles --------------------------------------------------------------------
    def _is_sender(self, node_id: str) -> bool:
        return node_id in self.senders

    def _is_receiver(self, node_id: str) -> bool:
        return node_id in self.receivers

    # -- protocol -----------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        me = ctx.node_id
        if self._is_sender(me):
            if self._my_value is _MISSING:
                raise ValueError(f"sender {me!r} must provide my_value to the data transfer")
            ctx.send_to(self.receivers, self._my_value, subtag=self.VALUE)
            self._received[me] = self._my_value
            if not self._is_receiver(me):
                self.complete(self._my_value)
                return
        if self._is_receiver(me):
            if self.round_timeout is not None:
                ctx.set_timer(self.round_timeout, self.TIMER_TRANSFER)
            self._maybe_finish(ctx)

    def on_timer(self, ctx: BlockContext, subtag: str) -> None:
        if self.done or subtag != self.TIMER_TRANSFER:
            return
        self.degraded = True
        values = list(self._received.values())
        if not values:
            self.complete(ABORT)  # nothing arrived: no value to degrade onto
            return
        first = values[0]
        if any(value != first for value in values[1:]):
            self.complete(ABORT)
            return
        self.complete(first)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done or subtag != self.VALUE:
            return
        if not self._is_receiver(ctx.node_id):
            return
        if sender not in self.senders:
            # Traffic from outside S cannot influence the transfer.
            return
        if sender in self._received:
            if self._received[sender] != payload:
                self.complete(ABORT)
            return
        self._received[sender] = payload
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx: BlockContext) -> None:
        if self.done:
            return
        if set(self._received) != set(self.senders):
            return
        values = list(self._received.values())
        first = values[0]
        if any(value != first for value in values[1:]):
            self.complete(ABORT)
            return
        self.complete(first)
