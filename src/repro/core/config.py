"""Configuration of the distributed auctioneer framework."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bid_agreement import AGREEMENT_MODES

__all__ = ["FrameworkConfig"]


@dataclass(frozen=True)
class FrameworkConfig:
    """Tunable parameters of a distributed simulation of the auctioneer.

    Attributes:
        k: maximum coalition size the simulation must tolerate.  The rational
            consensus underlying the bid agreement requires ``m > 2k`` providers, and
            the parallel allocator assigns every task to at least ``k + 1`` providers.
        parallel: if True and the mechanism is decomposable, use the parallel
            allocator (task graph); otherwise every provider runs the allocation
            algorithm locally after input validation.
        num_groups: number of provider groups for the parallel allocator.  ``None``
            means the maximum level of parallelism ``p = ⌊m / (k+1)⌋`` (the value the
            paper's evaluation uses).
        agreement_mode: ``"batched"`` (default), ``"per_label"`` or ``"per_bit"``;
            see :class:`~repro.core.bid_agreement.BidAgreementBlock`.
        use_common_coin: whether the allocator runs the common coin to agree on the
            random seed of the allocation algorithm (True keeps the full block chain
            of the paper; False saves one round for deterministic algorithms).
        require_quorum: if True, constructing a simulation with ``m <= 2k`` raises
            immediately instead of producing a protocol without its equilibrium
            guarantee.
        round_timeout: virtual-time budget per agreement round (``None``, the
            default, waits forever — the paper's reliable-substrate assumption).
            When set, the batched bid agreement closes each round with the
            batches/echoes received so far instead of hanging on a silent peer;
            a round closed early marks the run *degraded* (see
            :class:`~repro.core.outcome.Outcome`).  Honoured by the default
            ``"batched"`` agreement mode; the faithful ``per_label``/``per_bit``
            modes ignore it.
    """

    k: int = 1
    parallel: bool = False
    num_groups: Optional[int] = None
    agreement_mode: str = "batched"
    use_common_coin: bool = True
    require_quorum: bool = True
    round_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError("k must be non-negative")
        if self.agreement_mode not in AGREEMENT_MODES:
            raise ValueError(
                f"agreement_mode must be one of {AGREEMENT_MODES}, got {self.agreement_mode!r}"
            )
        if self.num_groups is not None and self.num_groups < 1:
            raise ValueError("num_groups must be positive when given")
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive when given")

    def check_quorum(self, num_providers: int) -> None:
        """Raise if the provider count is too small for the configured ``k``."""
        if not self.require_quorum:
            return
        if num_providers <= 2 * self.k:
            raise ValueError(
                f"the rational-consensus building block requires m > 2k; "
                f"got m={num_providers}, k={self.k}"
            )

    def max_parallelism(self, num_providers: int) -> int:
        """The maximum number of task groups: ``⌊m / (k + 1)⌋``."""
        return max(1, num_providers // (self.k + 1))
