"""Probability distributions Π for the common coin.

The common-coin block of the framework takes a distribution Π as input and outputs a
random value distributed according to Π, identical at every provider (Property 4 of
the paper).  The construction first produces a value uniform in [0, 1) by summing the
providers' committed random numbers modulo 1, and then applies a transformation — the
inverse CDF of Π — to that uniform value.  The classes below are those
transformations, as plain, canonically-encodable objects so a distribution can itself
be part of a protocol payload.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "Distribution",
    "UniformDistribution",
    "ExponentialDistribution",
    "DiscreteDistribution",
    "SeedDistribution",
]


class Distribution(abc.ABC):
    """A distribution defined by its inverse-CDF transform of a uniform [0,1) sample."""

    @abc.abstractmethod
    def transform(self, uniform: float) -> object:
        """Map a uniform [0, 1) sample to a sample of this distribution."""

    def _check(self, uniform: float) -> float:
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform sample must lie in [0, 1), got {uniform}")
        return uniform


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform on ``[low, high)``."""

    low: float = 0.0
    high: float = 1.0

    def transform(self, uniform: float) -> float:
        uniform = self._check(uniform)
        return self.low + (self.high - self.low) * uniform


@dataclass(frozen=True)
class ExponentialDistribution(Distribution):
    """Exponential with the given rate (inverse scale)."""

    rate: float = 1.0

    def transform(self, uniform: float) -> float:
        uniform = self._check(uniform)
        # Guard the log: uniform == 0 maps to 0, the infimum of the support.
        return 0.0 if uniform == 0.0 else -math.log1p(-uniform) / self.rate


@dataclass(frozen=True)
class DiscreteDistribution(Distribution):
    """A finite discrete distribution over arbitrary values.

    Attributes:
        values: the support.
        weights: non-negative weights (normalised internally); defaults to uniform.
    """

    values: Tuple = ()
    weights: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("DiscreteDistribution needs a non-empty support")
        if self.weights and len(self.weights) != len(self.values):
            raise ValueError("weights must match values in length")
        if self.weights and (min(self.weights) < 0 or sum(self.weights) <= 0):
            raise ValueError("weights must be non-negative and not all zero")

    def transform(self, uniform: float) -> object:
        uniform = self._check(uniform)
        weights: Sequence[float] = self.weights or tuple(1.0 for _ in self.values)
        total = float(sum(weights))
        threshold = uniform * total
        cumulative = 0.0
        for value, weight in zip(self.values, weights):
            cumulative += weight
            if threshold < cumulative:
                return value
        return self.values[-1]


@dataclass(frozen=True)
class SeedDistribution(Distribution):
    """Uniform integer seed in ``[0, 2**bits)``.

    This is how the allocator consumes the common coin in practice: one agreed seed
    drives a deterministic pseudo-random generator inside the allocation algorithm,
    so a single coin invocation covers an arbitrary number of internal draws.
    """

    bits: int = 63

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 63:
            raise ValueError("bits must be between 1 and 63")

    def transform(self, uniform: float) -> int:
        uniform = self._check(uniform)
        return min(int(uniform * (1 << self.bits)), (1 << self.bits) - 1)
