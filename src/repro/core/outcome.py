"""Outcomes of a distributed simulation of the auctioneer.

Definition 1 of the paper: every provider outputs either a pair (x, p) or ⊥; the
*outcome* of the simulation is (x, p) if **all** providers output that same pair, and
⊥ otherwise.  :func:`combine_outputs` implements exactly that rule, treating providers
that never produced an output (e.g. because a coalition withheld messages and the
protocol could not terminate) as having output ⊥.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.auctions.base import AuctionResult
from repro.common import ABORT, AbortType, is_abort

__all__ = ["ABORT", "AbortType", "Outcome", "combine_outputs", "is_abort"]


def combine_outputs(provider_outputs: Mapping[str, Any]) -> Union[AuctionResult, AbortType]:
    """Combine per-provider outputs into the simulation outcome.

    The outcome is the common (x, p) pair if every provider produced that exact pair;
    any disagreement, abort, or missing output yields ⊥.
    """
    if not provider_outputs:
        return ABORT
    values = list(provider_outputs.values())
    first = values[0]
    if first is None or is_abort(first):
        return ABORT
    for value in values[1:]:
        if value is None or is_abort(value) or value != first:
            return ABORT
    if not isinstance(first, AuctionResult):
        return ABORT
    return first


@dataclass
class Outcome:
    """The result of one simulated auction round.

    Attributes:
        result: the agreed (allocation, payments) pair, or ⊥.
        provider_outputs: what each provider individually output (useful to diagnose
            which provider aborted or diverged).
        elapsed_time: critical-path elapsed time of the simulated execution, in
            seconds (0.0 for centralised executions measured directly).
        messages: total number of messages delivered during the round.
        bytes_transferred: total payload bytes delivered during the round.
        degraded: True when some provider closed an agreement round on a
            timeout quorum (see ``FrameworkConfig.round_timeout``) — the run
            terminated with the bids received rather than the full view.
    """

    result: Union[AuctionResult, AbortType]
    provider_outputs: Dict[str, Any] = field(default_factory=dict)
    elapsed_time: float = 0.0
    messages: int = 0
    bytes_transferred: int = 0
    degraded: bool = False

    @property
    def aborted(self) -> bool:
        return is_abort(self.result)

    @property
    def auction_result(self) -> AuctionResult:
        """The agreed result; raises if the round aborted."""
        if self.aborted:
            raise ValueError("the simulation aborted (outcome is ⊥)")
        assert isinstance(self.result, AuctionResult)
        return self.result

    @staticmethod
    def from_provider_outputs(
        provider_outputs: Mapping[str, Any],
        elapsed_time: float = 0.0,
        messages: int = 0,
        bytes_transferred: int = 0,
        degraded: bool = False,
    ) -> "Outcome":
        return Outcome(
            result=combine_outputs(provider_outputs),
            provider_outputs=dict(provider_outputs),
            elapsed_time=elapsed_time,
            messages=messages,
            bytes_transferred=bytes_transferred,
            degraded=degraded,
        )
