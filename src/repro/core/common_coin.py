"""Common coin block (Property 4 of the paper).

Whenever the allocation algorithm needs a random number distributed according to some
distribution Π, the providers invoke the common coin with input Π.  The implementation
follows the scheme of Abraham, Dolev and Halpern the paper points to:

1. every provider j draws a random number ``r_j ∈ [0, 1)`` and broadcasts a hash
   *commitment* to it — before learning anyone else's number;
2. once a provider holds commitments from everyone, it *reveals* ``r_j`` (value and
   nonce);
3. the combined uniform sample is ``sum_j r_j mod 1``; each provider applies Π's
   inverse-CDF transform to it and outputs the result.

If any provider reveals a value outside [0, 1), a value inconsistent with its
commitment, or equivocates, the block outputs ⊥.  As long as at least one participant
outside the coalition draws its number honestly at random, the sum modulo 1 is uniform
and no coalition of size < m can bias it — it can only force ⊥, which solution
preference makes unattractive.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common import ABORT
from repro.consensus.commitment import Commitment, CommitmentScheme
from repro.core.distributions import Distribution, UniformDistribution
from repro.net.protocol import BlockContext, ProtocolBlock

__all__ = ["CommonCoinBlock"]


class CommonCoinBlock(ProtocolBlock):
    """Commit–reveal shared randomness transformed to a target distribution Π.

    ``round_timeout`` bounds each round in virtual time.  A coin round that
    times out completes with ⊥ rather than a partial sum: two sides of a
    partition would combine different reveal subsets into *different* "shared"
    values, which is worse than no value — randomness is the one building block
    that cannot degrade gracefully.  The timeout still guarantees termination,
    and :attr:`degraded` records why the coin failed.
    """

    COMMIT = "commit"
    REVEAL = "reveal"
    TIMER_COMMIT = "round/commit"
    TIMER_REVEAL = "round/reveal"

    def __init__(
        self,
        name: str,
        distribution: Distribution | None = None,
        round_timeout: float | None = None,
    ) -> None:
        super().__init__(name)
        self.distribution = distribution if distribution is not None else UniformDistribution()
        self.round_timeout = round_timeout
        #: True when a round closed by timeout (the coin then outputs ⊥).
        self.degraded = False
        self._my_value: float = 0.0
        self._my_nonce: bytes = b""
        self._commitments: Dict[str, Commitment] = {}
        self._reveals: Dict[str, float] = {}
        self._pending_reveals: Dict[str, Any] = {}
        self._revealed = False

    # -- protocol ------------------------------------------------------------------
    def on_start(self, ctx: BlockContext) -> None:
        self._my_value = ctx.rng.random()
        commitment, nonce = CommitmentScheme.commit(self._my_value, ctx.rng)
        self._my_nonce = nonce
        self._commitments[ctx.node_id] = commitment
        ctx.broadcast(commitment.digest, subtag=self.COMMIT)
        if self.round_timeout is not None:
            ctx.set_timer(self.round_timeout, self.TIMER_COMMIT)
        self._maybe_reveal(ctx)

    def on_timer(self, ctx: BlockContext, subtag: str) -> None:
        if self.done:
            return
        if (subtag == self.TIMER_COMMIT and not self._revealed) or (
            subtag == self.TIMER_REVEAL and self._revealed
        ):
            self.degraded = True
            self.complete(ABORT)

    def on_message(self, ctx: BlockContext, sender: str, subtag: str, payload: Any) -> None:
        if self.done or sender not in ctx.participants:
            return
        if subtag == self.COMMIT:
            self._on_commit(ctx, sender, payload)
        elif subtag == self.REVEAL:
            self._on_reveal(ctx, sender, payload)

    # -- rounds -------------------------------------------------------------------
    def _on_commit(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        if not isinstance(payload, str):
            self.complete(ABORT)
            return
        if sender in self._commitments:
            if self._commitments[sender].digest != payload:
                self.complete(ABORT)
            return
        self._commitments[sender] = Commitment(payload)
        if sender in self._pending_reveals:
            # A reveal raced ahead of its commit (asynchrony); process it now.
            self._on_reveal(ctx, sender, self._pending_reveals.pop(sender))
            if self.done:
                return
        self._maybe_reveal(ctx)

    def _maybe_reveal(self, ctx: BlockContext) -> None:
        if self._revealed or self.done:
            return
        if set(self._commitments) != set(ctx.participants):
            return
        self._revealed = True
        ctx.broadcast((self._my_value, self._my_nonce), subtag=self.REVEAL)
        self._reveals[ctx.node_id] = self._my_value
        if self.round_timeout is not None:
            ctx.set_timer(self.round_timeout, self.TIMER_REVEAL)
        self._maybe_finish(ctx)

    def _on_reveal(self, ctx: BlockContext, sender: str, payload: Any) -> None:
        commitment = self._commitments.get(sender)
        if commitment is None:
            # The reveal overtook its commit on the wire (channels are reliable but
            # not ordered).  Buffer it; it is re-processed when the commit arrives.
            self._pending_reveals[sender] = payload
            return
        try:
            value, nonce = payload
        except (TypeError, ValueError):
            self.complete(ABORT)
            return
        if not isinstance(value, float) or not 0.0 <= value < 1.0:
            self.complete(ABORT)
            return
        if not commitment.verify(value, bytes(nonce)):
            self.complete(ABORT)
            return
        if sender in self._reveals:
            if self._reveals[sender] != value:
                self.complete(ABORT)
            return
        self._reveals[sender] = value
        self._maybe_finish(ctx)

    def _maybe_finish(self, ctx: BlockContext) -> None:
        if self.done or not self._revealed:
            return
        if set(self._reveals) != set(ctx.participants):
            return
        # Sum in provider-id order: floating-point addition is not associative, so a
        # per-provider insertion order would let clocks (not values) change the result.
        combined = sum(self._reveals[pid] for pid in sorted(self._reveals)) % 1.0
        # Guard against floating-point summation landing exactly on 1.0.
        if combined >= 1.0:
            combined = 0.0
        self.complete(self.distribution.transform(combined))
