"""High-level entry points: distributed and centralised auctioneers.

:class:`DistributedAuctioneer` is the one-call API of the reproduction: give it the
allocation algorithm, the provider identities and a
:class:`~repro.core.config.FrameworkConfig`, then call :meth:`DistributedAuctioneer.run`
with the bids each provider received.  It builds one
:class:`~repro.core.provider_protocol.FrameworkProviderNode` per provider, simulates
the whole protocol on a :class:`~repro.net.network.SimNetwork`, combines the
per-provider outputs into the outcome of Definition 1, and reports timing and traffic
statistics.

:class:`CentralizedAuctioneer` is the baseline of the paper's evaluation: a single
trusted entity that simply runs the algorithm, with (optionally) a modelled round-trip
to the clients added to its elapsed time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.auctions.base import AllocationAlgorithm, AuctionResult, BidVector, ProviderAsk, UserBid
from repro.common import stable_hash
from repro.core.config import FrameworkConfig
from repro.core.outcome import Outcome
from repro.core.provider_protocol import FrameworkProviderNode, ProviderInput
from repro.net.latency import LatencyModel
from repro.net.network import NetworkStats, SimNetwork
from repro.net.scheduler import Scheduler

__all__ = ["DistributedAuctioneer", "CentralizedAuctioneer", "SimulationReport"]


@dataclass
class SimulationReport:
    """Outcome of a simulated round plus the network statistics behind it."""

    outcome: Outcome
    stats: Optional[NetworkStats] = None

    @property
    def aborted(self) -> bool:
        return self.outcome.aborted

    @property
    def result(self) -> AuctionResult:
        return self.outcome.auction_result

    @property
    def elapsed_time(self) -> float:
        return self.outcome.elapsed_time


class DistributedAuctioneer:
    """Simulate the auctioneer with a decentralized set of providers.

    Args:
        algorithm: the allocation algorithm ``A`` to simulate.
        providers: ids of the providers that execute the protocol.
        config: framework configuration (k, parallelism, agreement mode, ...).
        latency_model: network latency model for the simulation (default: zero).
        scheduler: message scheduler (default: earliest-arrival-first).
        seed: seed of the simulated network (latency jitter, per-node RNGs).
        measure_compute: charge measured handler wall-time to the providers' virtual
            clocks — enable for benchmarking, disable for deterministic tests.
        fault_plan: optional :class:`~repro.net.faults.FaultPlan` armed on the
            simulated network — the chaos audit injects message loss, crashes
            and partitions through it.  ``None`` (the default) is the paper's
            reliable substrate.
    """

    def __init__(
        self,
        algorithm: AllocationAlgorithm,
        providers: Sequence[str],
        config: Optional[FrameworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        measure_compute: bool = False,
        fault_plan=None,
    ) -> None:
        if not providers:
            raise ValueError("need at least one provider")
        self.algorithm = algorithm
        self.providers = sorted(providers)
        self.config = config if config is not None else FrameworkConfig()
        self.config.check_quorum(len(self.providers))
        self.latency_model = latency_model
        self.scheduler = scheduler
        self.seed = seed
        self.measure_compute = measure_compute
        self.fault_plan = fault_plan

    # -- input construction -------------------------------------------------------
    def consistent_inputs(
        self,
        bids: BidVector,
        asks: Optional[Mapping[str, ProviderAsk]] = None,
    ) -> Dict[str, ProviderInput]:
        """Provider inputs for the honest case: every bidder sent the same bid everywhere.

        Args:
            bids: the bid vector as submitted by the users; its provider entries are
                used as the asks unless ``asks`` overrides them.
            asks: optional per-provider asks (e.g. capacities for the standard
                auction) if they are not already part of ``bids``.
        """
        ask_map: Dict[str, ProviderAsk] = {p.provider_id: p for p in bids.providers}
        if asks is not None:
            ask_map.update(asks)
        inputs: Dict[str, ProviderInput] = {}
        for provider_id in self.providers:
            inputs[provider_id] = ProviderInput(
                provider_id=provider_id,
                received_user_bids={bid.user_id: bid for bid in bids.users},
                # Asks for *all* sellers, which may be a superset of the providers
                # executing the protocol (the paper runs the protocol on the minimum
                # 2k+1 providers out of the m sellers in Figure 4).
                received_provider_asks=dict(ask_map),
            )
        return inputs

    # -- execution ------------------------------------------------------------------
    def run(
        self,
        provider_inputs: Mapping[str, ProviderInput],
        expected_users: Optional[Sequence[str]] = None,
        node_factory=None,
        max_steps: int = 2_000_000,
    ) -> SimulationReport:
        """Simulate one auction round.

        Args:
            provider_inputs: what each provider received (one entry per provider).
            expected_users: the user ids every provider runs agreement over; inferred
                from the union of received bids when omitted.
            node_factory: optional callable ``(provider_input, ...) -> Node`` used to
                substitute deviating provider implementations (the adversary package
                uses this to inject coalition behaviours).
            max_steps: safety cap on delivered messages.
        """
        if set(provider_inputs) != set(self.providers):
            raise ValueError(
                "provider_inputs must contain exactly one entry per configured provider"
            )
        if expected_users is None:
            seen = set()
            for provider_input in provider_inputs.values():
                seen.update(provider_input.received_user_bids.keys())
            expected_users = sorted(seen)

        network = SimNetwork(
            latency_model=self.latency_model,
            scheduler=self.scheduler,
            seed=self.seed,
            measure_compute=self.measure_compute,
            fault_plan=self.fault_plan,
        )
        factory = node_factory if node_factory is not None else self._default_node
        for provider_id in self.providers:
            node = factory(
                provider_inputs[provider_id],
                self.algorithm,
                self.config,
                expected_users,
                self.providers,
            )
            network.add_node(node)
        stats = network.run(max_steps=max_steps)
        outputs = {
            provider_id: network.node(provider_id).output
            if network.node(provider_id).finished
            else None
            for provider_id in self.providers
        }
        outcome = Outcome.from_provider_outputs(
            outputs,
            elapsed_time=stats.elapsed_time,
            messages=stats.messages_delivered,
            bytes_transferred=stats.bytes_delivered,
            degraded=any(
                getattr(network.node(provider_id), "degraded", False)
                for provider_id in self.providers
            ),
        )
        return SimulationReport(outcome=outcome, stats=stats)

    def run_from_bids(
        self,
        bids: BidVector,
        asks: Optional[Mapping[str, ProviderAsk]] = None,
        max_steps: int = 2_000_000,
    ) -> SimulationReport:
        """Convenience wrapper: simulate the honest case directly from a bid vector."""
        inputs = self.consistent_inputs(bids, asks)
        return self.run(inputs, expected_users=[u.user_id for u in bids.users], max_steps=max_steps)

    @staticmethod
    def _default_node(provider_input, algorithm, config, expected_users, providers):
        return FrameworkProviderNode(provider_input, algorithm, config, expected_users, providers)


class CentralizedAuctioneer:
    """The trusted-auctioneer baseline: run ``A`` directly and time it.

    Args:
        algorithm: the allocation algorithm.
        base_latency: modelled client↔auctioneer round-trip added to the elapsed
            time (0 by default).  The paper's centralised measurements include the
            time for the client to ship the bids and read back the result; set this
            to the corresponding round-trip to mirror that accounting.
        seed: seed for the algorithm's internal randomness.
    """

    def __init__(
        self,
        algorithm: AllocationAlgorithm,
        base_latency: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.algorithm = algorithm
        self.base_latency = base_latency
        self.seed = seed

    def run(self, bids: BidVector) -> SimulationReport:
        """Execute the auction centrally, reporting measured compute time."""
        rng = random.Random(stable_hash(self.seed, "centralized"))
        start = time.perf_counter()
        result = self.algorithm.run(bids, rng)
        elapsed = time.perf_counter() - start + self.base_latency
        outcome = Outcome(
            result=result,
            provider_outputs={"auctioneer": result},
            elapsed_time=elapsed,
            messages=0,
            bytes_transferred=0,
        )
        return SimulationReport(outcome=outcome, stats=None)
