"""Task graphs for the parallel allocator (Section 4.2, Figures 2–3).

The execution of the allocation algorithm ``A`` is described as a directed acyclic
graph of *tasks*: nodes are computations, edges are data dependencies, and every two
unordered tasks may run in parallel on different groups of providers.  To tolerate
coalitions of size ``k`` each task is assigned to at least ``k + 1`` providers, and
there is one final task, executed by every provider, that depends (transitively) on
all other tasks and produces the output pair (x, p).

This module provides the graph data structures, their validity checks, and the
builder for the standard-auction graph of Algorithm 1 (allocation task, one payment
task per group of users, final gather task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.auctions.base import BidVector
from repro.auctions.decomposable import DecomposableMechanism

__all__ = [
    "Task",
    "TaskGraph",
    "TaskGraphError",
    "assign_provider_groups",
    "partition_users",
    "build_standard_auction_graph",
]

#: A task body: (dependency results, agreed bid vector, agreed random seed) -> value.
TaskFunction = Callable[[Mapping[str, Any], BidVector, int], Any]


class TaskGraphError(ValueError):
    """Raised when a task graph violates the structural requirements of §4.2."""


@dataclass(frozen=True)
class Task:
    """One node of the allocator's task graph.

    Attributes:
        name: unique task name.
        depends_on: names of the tasks whose results this task consumes.
        executors: provider ids assigned to execute this task (at least k+1).
        fn: the computation; must be a deterministic function of its arguments.
    """

    name: str
    depends_on: Tuple[str, ...]
    executors: Tuple[str, ...]
    fn: TaskFunction

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("task name must be non-empty")
        if not self.executors:
            raise TaskGraphError(f"task {self.name!r} has no executors")
        if len(set(self.executors)) != len(self.executors):
            raise TaskGraphError(f"task {self.name!r} has duplicate executors")


@dataclass
class TaskGraph:
    """A DAG of tasks ending in a single gather task executed by all providers."""

    tasks: Dict[str, Task] = field(default_factory=dict)
    final_task: Optional[str] = None

    def add(self, task: Task) -> None:
        if task.name in self.tasks:
            raise TaskGraphError(f"duplicate task name {task.name!r}")
        self.tasks[task.name] = task

    def task(self, name: str) -> Task:
        return self.tasks[name]

    # -- structure ---------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Task names in dependency order; raises on cycles or dangling references."""
        in_degree: Dict[str, int] = {}
        for task in self.tasks.values():
            in_degree.setdefault(task.name, 0)
            for dep in task.depends_on:
                if dep not in self.tasks:
                    raise TaskGraphError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
                in_degree[task.name] = in_degree.get(task.name, 0) + 1
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        remaining = dict(in_degree)
        while ready:
            current = ready.pop(0)
            order.append(current)
            for task in self.tasks.values():
                if current in task.depends_on:
                    remaining[task.name] -= 1
                    if remaining[task.name] == 0:
                        ready.append(task.name)
            ready.sort()
        if len(order) != len(self.tasks):
            raise TaskGraphError("task graph contains a cycle")
        return order

    def successors(self, name: str) -> List[Task]:
        return [task for task in self.tasks.values() if name in task.depends_on]

    def validate(self, providers: Sequence[str], k: int) -> None:
        """Check the structural requirements for a k-resilient simulation.

        * every task is executed by at least ``k + 1`` providers, all of which are
          known providers;
        * there is exactly one final task, it is executed by *all* providers, and
          every other task is an ancestor of it (so the output depends on everything).
        """
        provider_set = set(providers)
        order = self.topological_order()
        if self.final_task is None:
            raise TaskGraphError("task graph has no final task")
        if self.final_task not in self.tasks:
            raise TaskGraphError(f"unknown final task {self.final_task!r}")
        for task in self.tasks.values():
            if len(task.executors) < k + 1:
                raise TaskGraphError(
                    f"task {task.name!r} has {len(task.executors)} executors; "
                    f"needs at least k+1={k + 1}"
                )
            unknown = set(task.executors) - provider_set
            if unknown:
                raise TaskGraphError(f"task {task.name!r} has unknown executors {unknown}")
        final = self.tasks[self.final_task]
        if set(final.executors) != provider_set:
            raise TaskGraphError("the final task must be executed by all providers")
        # Every non-final task must reach the final task.
        reachable = {self.final_task}
        for name in reversed(order):
            if name in reachable:
                reachable.update(self.tasks[name].depends_on)
        missing = set(self.tasks) - reachable
        if missing:
            raise TaskGraphError(
                f"tasks {sorted(missing)} do not feed into the final task"
            )


# -- provider grouping and user partitioning -------------------------------------------
def assign_provider_groups(
    providers: Sequence[str], k: int, num_groups: Optional[int] = None
) -> List[List[str]]:
    """Partition providers into ``c`` groups of at least ``k + 1`` members each.

    The maximum level of parallelism is ``p = ⌊m / (k + 1)⌋`` (Section 6); fewer
    groups may be requested.  Providers are assigned contiguously in sorted-id order,
    with any remainder spread over the first groups.
    """
    ordered = sorted(providers)
    m = len(ordered)
    if k < 0:
        raise ValueError("k must be non-negative")
    max_groups = m // (k + 1)
    if max_groups < 1:
        raise ValueError(f"need at least k+1={k + 1} providers, have {m}")
    c = max_groups if num_groups is None else num_groups
    if c < 1 or c > max_groups:
        raise ValueError(f"num_groups must be in [1, {max_groups}], got {c}")
    base, extra = divmod(m, c)
    groups: List[List[str]] = []
    cursor = 0
    for index in range(c):
        size = base + (1 if index < extra else 0)
        groups.append(ordered[cursor : cursor + size])
        cursor += size
    return groups


def partition_users(user_ids: Sequence[str], num_groups: int) -> List[List[str]]:
    """Split users into ``num_groups`` balanced chunks (some possibly empty).

    Users are dealt round-robin (by sorted id) rather than in contiguous runs: the
    expensive part of the payment task is the per-*winner* re-solve, and winners tend
    to cluster, so striding spreads them evenly over the groups and keeps the
    parallel phase balanced.
    """
    ordered = sorted(user_ids)
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    chunks: List[List[str]] = [[] for _ in range(num_groups)]
    for index, user_id in enumerate(ordered):
        chunks[index % num_groups].append(user_id)
    return chunks


# -- the standard-auction graph of Algorithm 1 ------------------------------------------
def build_standard_auction_graph(
    mechanism: DecomposableMechanism,
    bids: BidVector,
    providers: Sequence[str],
    k: int,
    num_groups: Optional[int] = None,
) -> TaskGraph:
    """Build the allocation / per-group payments / gather graph of Algorithm 1.

    Task 1 ("alloc") computes the allocation and is executed by every provider (the
    paper runs this step sequentially everywhere because it parallelises poorly).
    Task 2.g ("pay/<g>") computes the payments of the g-th chunk of users and is
    executed by provider group g.  Task 3 ("final") gathers everything and assembles
    the (x, p) pair; it is executed by every provider.
    """
    all_providers = tuple(sorted(providers))
    groups = assign_provider_groups(all_providers, k, num_groups)
    chunks = partition_users(bids.user_ids, len(groups))

    graph = TaskGraph()

    def alloc_fn(_inputs: Mapping[str, Any], agreed: BidVector, seed: int) -> Any:
        allocation, welfare = mechanism.solve_allocation(agreed, seed)
        return {"allocation": allocation, "welfare": welfare}

    graph.add(Task("alloc", (), all_providers, alloc_fn))

    payment_tasks: List[str] = []
    for index, (group, chunk) in enumerate(zip(groups, chunks)):
        task_name = f"pay/{index}"
        payment_tasks.append(task_name)
        chunk_users = tuple(chunk)

        def payment_fn(
            inputs: Mapping[str, Any],
            agreed: BidVector,
            seed: int,
            _users: Tuple[str, ...] = chunk_users,
        ) -> Any:
            alloc_result = inputs["alloc"]
            return mechanism.payments_for_users(
                agreed,
                list(_users),
                alloc_result["allocation"],
                alloc_result["welfare"],
                seed,
            )

        graph.add(Task(task_name, ("alloc",), tuple(group), payment_fn))

    def final_fn(inputs: Mapping[str, Any], agreed: BidVector, seed: int) -> Any:
        merged: Dict[str, float] = {}
        for task_name in payment_tasks:
            merged.update(inputs[task_name])
        return mechanism.assemble(agreed, inputs["alloc"]["allocation"], merged)

    graph.add(Task("final", ("alloc", *payment_tasks), all_providers, final_fn))
    graph.final_task = "final"
    graph.validate(all_providers, k)
    return graph
