"""Rendering lint reports: the stable text and JSON formats.

The JSON document is the CI artifact contract (uploaded by the ``lint`` job
and schema-checked in ``tests/analysis``): bump ``REPORT_VERSION`` on any
field change so downstream consumers can dispatch on it.  Keys are emitted
sorted and findings in (path, line, col, code) order, so two runs over the
same tree produce byte-identical documents — diffable in CI.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import LintReport

__all__ = ["REPORT_VERSION", "report_to_dict", "render_json", "render_text"]

REPORT_VERSION = 1


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    counts: Dict[str, int] = {}
    for finding in report.findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "rules": list(report.codes),
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": counts,
        "suppressed": report.suppressed,
        "summary": _summary_line(report),
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    lines.append(_summary_line(report))
    return "\n".join(lines)


def _summary_line(report: LintReport) -> str:
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    return (
        f"lint: {status} across {report.files_checked} file(s), "
        f"{report.suppressed} suppressed, rules {','.join(report.codes)}"
    )
