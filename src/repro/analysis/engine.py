"""The lint engine: file discovery, rule dispatch, suppression, selection.

One :func:`lint_paths` call is one lint run: discover ``.py`` files under the
given paths (sorted, so reports are byte-stable), parse each once, hand the
shared :class:`~repro.analysis.rules.SourceModule` to every selected rule,
then drop findings muted by a line-scoped ``# repro: noqa[RPAxxx]`` comment.
The result is a :class:`LintReport` — pure data; rendering lives in
:mod:`repro.analysis.reporting`.

Error taxonomy (mirrors the CLI exit contract):

* findings           — the report carries them; the CLI exits 1.
* :class:`LintError` — the *lint run itself* is broken (missing path, syntax
  error in a scanned file).  A :class:`~repro.scenarios.spec.SpecError`
  subclass, so the message is path-precise and the CLI exits 2 through the
  same handler every other subcommand uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import ast

from repro.analysis.findings import (
    Finding,
    is_suppressed,
    scan_suppressions,
    sort_findings,
)
from repro.analysis.paths import classify_path
from repro.analysis.rules import RULES, Rule, SourceModule
from repro.scenarios.spec import ComponentSpec, SpecError

__all__ = ["LintError", "LintReport", "lint_paths", "lint_source", "select_rules"]

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


class LintError(SpecError):
    """The lint run itself failed (bad input, unparseable file) — CLI exit 2."""


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run: what was checked, found and suppressed."""

    codes: Tuple[str, ...]
    files_checked: int
    findings: Tuple[Finding, ...]
    suppressed: int

    @property
    def clean(self) -> bool:
        return not self.findings


def select_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the selected rules (all of them by default).

    ``select`` entries may be comma-separated (``--select RPA001,RPA004`` and
    repeated ``--select`` flags compose).  Unknown codes raise a path-precise
    :class:`SpecError` naming the offending position, exactly like an unknown
    mechanism kind in a spec file.
    """
    if not select:
        codes = list(RULES.available())
    else:
        codes = []
        for position, chunk in enumerate(select):
            for raw in str(chunk).split(","):
                code = raw.strip().upper()
                if not code:
                    continue
                if code not in RULES:
                    raise SpecError(
                        f"--select[{position}]",
                        f"unknown rule code {raw.strip()!r}; "
                        f"available: {', '.join(RULES.available())}",
                    )
                if code not in codes:
                    codes.append(code)
        if not codes:
            raise SpecError("--select", "no rule codes given")
        codes.sort()
    return [RULES.create(ComponentSpec(code), f"rules[{code}]") for code in codes]


def _parse_module(display_path: str, source: str) -> SourceModule:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(
            display_path, f"cannot parse: {exc.msg} (line {exc.lineno})"
        ) from exc
    return SourceModule(
        path_class=classify_path(display_path), source=source, tree=tree
    )


def _run_rules(
    modules: Iterable[SourceModule], rules: Sequence[Rule]
) -> Tuple[Tuple[Finding, ...], int, int]:
    findings: List[Finding] = []
    suppressed = 0
    checked = 0
    for module in modules:
        checked += 1
        suppressions = scan_suppressions(module.source)
        for rule in rules:
            for finding in rule.check(module):
                if is_suppressed(finding, suppressions):
                    suppressed += 1
                else:
                    findings.append(finding)
    return sort_findings(findings), suppressed, checked


def lint_source(
    source: str,
    path: str = "src/repro/example.py",
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint one source string under a virtual ``path`` (fixture/test entry point)."""
    rules = select_rules(select)
    findings, suppressed, checked = _run_rules([_parse_module(path, source)], rules)
    return LintReport(
        codes=tuple(rule.code for rule in rules),
        files_checked=checked,
        findings=findings,
        suppressed=suppressed,
    )


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """All ``.py`` files under ``paths``, sorted; missing paths are a LintError."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(str(raw), "no such file or directory")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in path.rglob("*.py"):
            if not _SKIPPED_DIRS.intersection(candidate.parts):
                files.append(candidate)
    return sorted(set(files))


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the selected rules."""
    rules = select_rules(select)

    def modules() -> Iterable[SourceModule]:
        for file_path in discover_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(str(file_path), f"cannot read: {exc}") from exc
            yield _parse_module(file_path.as_posix(), source)

    findings, suppressed, checked = _run_rules(modules(), rules)
    return LintReport(
        codes=tuple(rule.code for rule in rules),
        files_checked=checked,
        findings=findings,
        suppressed=suppressed,
    )
