"""The RPA rule set: determinism & contract rules over Python ASTs.

Rules are registered in :data:`RULES` — the same :class:`Registry` that backs
``MECHANISMS`` and ``EXECUTOR_BACKENDS`` — keyed by their stable code, so the
extension contract is identical: register a factory under a code and it is
reachable from the engine, ``--select``, the self-check test and CI with no
new plumbing.  A rule is a callable object with ``code``/``name``/``summary``
attributes and a ``check(module)`` method yielding :class:`Finding`\\ s.

The shipped rules, and the runtime bug class each one pins down statically:

==========  ====================================================================
code        what it catches
==========  ====================================================================
RPA001      nondeterministic call (wall clock, global RNG, host entropy) in a
            deterministic path — the bit-identity guarantee's failure mode
RPA002      iteration over an unordered collection in a deterministic path —
            the PR 4 ``RoundRobinScheduler`` PYTHONHASHSEED bug class
RPA003      exception class whose constructor breaks ``BaseException`` pickling
            — the PR 3 ``SpecError``-across-the-process-pool bug class
RPA004      lambda / nested function handed to an executor ``submit``/``map``/
            ``execute`` — unpicklable under the spawn start method
RPA005      ``*Spec`` class that is not a frozen dataclass with typed fields —
            the registry/spec-file contract
RPA006      registry ``register()`` call whose kind is not a string literal —
            dynamic kinds escape spec-file validation
RPA007      ``benchmarks/`` test module without the ``bench`` pytestmark —
            the PR 6 meta-test, generalised to a lint rule
RPA008      ``StoreBackend`` subclass without a non-empty literal ``kind``, or
            registered under a different kind than it declares — RPA006
            generalised to the results-plane store contract
RPA009      retry loop in a deterministic path without a literal attempt
            bound, or ``time.sleep`` between attempts — the recovery layer's
            reproducibility contract (backoff must live in sim time)
==========  ====================================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Generator, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.paths import PathClass
from repro.scenarios.registry import Registry

__all__ = ["RULES", "Rule", "SourceModule", "all_rule_codes"]


@dataclass(frozen=True)
class SourceModule:
    """One parsed file handed to every rule: source text, AST and path class."""

    path_class: PathClass
    source: str
    tree: ast.Module

    @property
    def display_path(self) -> str:
        return self.path_class.display_path


class Rule:
    """Base class: subclasses set the class attributes and implement ``check``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


# ------------------------------------------------------------ shared helpers --
def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, for every module/name import in the file.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random`` maps
    ``numpy -> numpy`` (attribute access supplies the rest); ``from random
    import randint`` maps ``randint -> random.randint``.  Relative imports are
    ignored — the taint table only names stdlib/numpy origins.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")`` for pure Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _resolve_call_origin(func: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The imported dotted origin of a called name, or None if not import-rooted."""
    parts = _dotted_name(func)
    if parts is None:
        return None
    origin = imports.get(parts[0])
    if origin is None:
        return None
    return ".".join((origin,) + parts[1:])


# ------------------------------------------------------------------- RPA001 --
#: Calls that are nondeterministic, full stop.
_TAINTED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Module prefixes where *every* call is host entropy.
_TAINTED_PREFIXES = ("secrets.",)

#: Seedable RNG constructors: deterministic exactly when given a seed argument.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)


class DeterminismTaintRule(Rule):
    """RPA001: wall clock, global RNG state or host entropy in a deterministic path."""

    code = "RPA001"
    name = "determinism-tainted-call"
    summary = (
        "no wall-clock, module-level RNG or host-entropy calls in deterministic paths"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.path_class.deterministic:
            return
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call_origin(node.func, imports)
            if origin is None:
                continue
            reason = self._taint_reason(origin, node)
            if reason is not None:
                yield self.finding(module, node, reason)

    @staticmethod
    def _taint_reason(origin: str, call: ast.Call) -> Optional[str]:
        if origin in _TAINTED_CALLS:
            return (
                f"call to {origin}() is nondeterministic; deterministic paths "
                f"must derive every value from the scenario seed"
            )
        if origin.startswith(_TAINTED_PREFIXES):
            return f"call to {origin}() draws host entropy in a deterministic path"
        if origin in _SEEDABLE_CONSTRUCTORS:
            if not call.args and not call.keywords:
                return (
                    f"{origin}() without a seed falls back to OS entropy; pass an "
                    f"explicit seed derived from the scenario seed"
                )
            return None
        if origin.startswith("random."):
            return (
                f"call to {origin}() uses the module-level RNG, whose state is "
                f"process-global; use a seeded random.Random instance instead"
            )
        if origin.startswith("numpy.random."):
            return (
                f"call to {origin}() mutates numpy's global RNG state; use a "
                f"seeded Generator/RandomState instance instead"
            )
        return None


# ------------------------------------------------------------------- RPA002 --
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
#: Wrappers that materialise their argument's iteration order.
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "enumerate"})


class UnorderedIterationRule(Rule):
    """RPA002: iterating an unordered collection in a deterministic path."""

    code = "RPA002"
    name = "unordered-iteration"
    summary = "no iteration over sets/unordered views in deterministic paths"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.path_class.deterministic:
            return
        for node in ast.walk(module.tree):
            iterables: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(comp.iter for comp in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_MATERIALISERS
                    and node.args
                ):
                    iterables.append(node.args[0])
            for iterable in iterables:
                label = self._unordered_label(iterable)
                if label is not None:
                    yield self.finding(
                        module,
                        iterable,
                        f"iteration over {label} has no deterministic order "
                        f"(PYTHONHASHSEED-dependent); sort it or use an "
                        f"insertion-ordered structure",
                    )

    @staticmethod
    def _unordered_label(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return f".{func.attr}(...)"
        return None


# ------------------------------------------------------------------- RPA003 --
_EXCEPTION_BASE_SUFFIXES = ("Error", "Exception", "Warning")


def _is_exception_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        parts = _dotted_name(base)
        if parts is None:
            continue
        leaf = parts[-1]
        if leaf == "BaseException" or leaf.endswith(_EXCEPTION_BASE_SUFFIXES):
            return True
    return False


class PoolSafeExceptionRule(Rule):
    """RPA003: exception ``__init__`` that breaks BaseException pickling.

    ``BaseException.__reduce__`` replays ``type(exc)(*exc.args)``, and ``args``
    is whatever reached ``BaseException.__init__``.  A subclass whose
    ``__init__`` forwards anything *other than its own parameters, in order*
    (e.g. one pre-formatted string built from two parameters — the pre-PR-3
    ``SpecError``) therefore unpickles with the wrong arity on the far side of
    a process pool.  Such classes must define ``__reduce__`` explicitly.
    """

    code = "RPA003"
    name = "pool-unsafe-exception"
    summary = "exception constructors must survive pickling across the process pool"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _is_exception_class(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            init = methods.get("__init__")
            if init is None or "__reduce__" in methods:
                continue
            if not self._mirrors_parameters(init):
                yield self.finding(
                    module,
                    init,
                    f"exception class {node.name!r} defines __init__ without "
                    f"__reduce__, and its super().__init__ call does not mirror "
                    f"the parameters — it will not survive pickling across the "
                    f"process pool (BaseException replays __init__(*self.args))",
                )

    @staticmethod
    def _mirrors_parameters(init: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        """True when ``super().__init__`` receives exactly the init parameters."""
        params = [arg.arg for arg in init.args.args[1:]]  # drop self
        vararg = init.args.vararg.arg if init.args.vararg else None
        if init.args.kwonlyargs or init.args.posonlyargs:
            return False
        for node in ast.walk(init):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__init__"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                continue
            if node.keywords:
                return False
            expected: List[str] = list(params)
            passed: List[Optional[str]] = []
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    passed.append(arg.id)
                elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
                    passed.append(f"*{arg.value.id}")
                else:
                    return False
            if vararg is not None:
                expected.append(f"*{vararg}")
            return passed == expected
        # No super().__init__ at all: BaseException.__new__ still captures the
        # constructor arguments as args, so the replay arity matches.
        return True


# ------------------------------------------------------------------- RPA004 --
_SUBMIT_METHODS = {"submit": 0, "map": 0, "execute": 1}


class PicklableSubmissionRule(Rule):
    """RPA004: only module-level callables may be handed to an executor."""

    code = "RPA004"
    name = "unpicklable-submission"
    summary = "executor submit/map/execute callables must be module-level (picklable)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._visit(module, module.tree, nested_defs=frozenset())

    def _visit(self, module, node, nested_defs) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = frozenset(
                    item.name
                    for item in ast.walk(child)
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item is not child
                )
                yield from self._visit(module, child, nested_defs | inner)
                continue
            if isinstance(child, ast.Call):
                yield from self._check_call(module, child, nested_defs)
            yield from self._visit(module, child, nested_defs)

    def _check_call(self, module, call: ast.Call, nested_defs) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SUBMIT_METHODS:
            return
        index = _SUBMIT_METHODS[func.attr]
        if len(call.args) <= index:
            return
        target = call.args[index]
        problem = self._unpicklable_label(target, nested_defs)
        if problem is not None:
            yield self.finding(
                module,
                target,
                f"{problem} passed to .{func.attr}() cannot be pickled to a "
                f"worker process under the spawn start method; submit a "
                f"module-level callable (functools.partial over one is fine)",
            )

    def _unpicklable_label(self, node: ast.AST, nested_defs) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name) and node.id in nested_defs:
            return f"the nested function {node.id!r}"
        if isinstance(node, ast.Call):
            parts = _dotted_name(node.func)
            if parts is not None and parts[-1] == "partial" and node.args:
                return self._unpicklable_label(node.args[0], nested_defs)
        return None


# ------------------------------------------------------------------- RPA005 --
class FrozenSpecRule(Rule):
    """RPA005: every ``*Spec`` class is a ``frozen=True`` dataclass, fields typed."""

    code = "RPA005"
    name = "spec-contract"
    summary = "*Spec classes must be frozen dataclasses with typed fields"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Spec"):
                continue
            frozen = self._frozen_dataclass_state(node)
            if frozen is None:
                yield self.finding(
                    module,
                    node,
                    f"spec class {node.name!r} is not a dataclass; spec trees "
                    f"must be @dataclass(frozen=True) so specs stay pure data "
                    f"with value semantics",
                )
            elif frozen is False:
                yield self.finding(
                    module,
                    node,
                    f"spec class {node.name!r} is a mutable dataclass; declare "
                    f"@dataclass(frozen=True) so shared specs cannot drift "
                    f"between workers",
                )
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if (
                            isinstance(target, ast.Name)
                            and not target.id.startswith("_")
                            and not target.id.isupper()
                        ):
                            yield self.finding(
                                module,
                                item,
                                f"untyped assignment {target.id!r} in spec class "
                                f"{node.name!r} is silently NOT a dataclass "
                                f"field; add a type annotation",
                            )

    @staticmethod
    def _frozen_dataclass_state(node: ast.ClassDef) -> Optional[bool]:
        """None: not a dataclass.  True/False: dataclass, frozen or not."""
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            parts = _dotted_name(target)
            if parts is None or parts[-1] != "dataclass":
                continue
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if keyword.arg == "frozen":
                        return (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        )
            return False
        return None


# ------------------------------------------------------------------- RPA006 --
class RegistryLiteralKindRule(Rule):
    """RPA006: registry registrations use non-empty string-literal kinds.

    Receivers are recognised by the repo convention that registries are
    module-level ALL_CAPS constants (``MECHANISMS``, ``EXECUTOR_BACKENDS``,
    ``RULES`` …).  A dynamic kind cannot be cross-checked against spec files
    or listed in ``available()`` docs, and an empty kind is unreachable.
    """

    code = "RPA006"
    name = "registry-literal-kind"
    summary = "registry register() calls must pass a non-empty string-literal kind"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "register"):
                continue
            receiver = _dotted_name(func.value)
            if receiver is None or not receiver[-1].isupper():
                continue
            registry = ".".join(receiver)
            if not node.args:
                yield self.finding(
                    module,
                    node,
                    f"{registry}.register() without a kind argument; pass the "
                    f"kind as a string literal",
                )
                continue
            kind = node.args[0]
            if not (isinstance(kind, ast.Constant) and isinstance(kind.value, str)):
                yield self.finding(
                    module,
                    kind,
                    f"{registry}.register() kind must be a string literal so "
                    f"spec files and docs can reference it; got a dynamic "
                    f"expression",
                )
            elif not kind.value:
                yield self.finding(
                    module, kind, f"{registry}.register() kind must be non-empty"
                )


# ------------------------------------------------------------------- RPA007 --
class BenchPytestmarkRule(Rule):
    """RPA007: every ``benchmarks/test_*.py`` declares the ``bench`` pytestmark."""

    code = "RPA007"
    name = "bench-pytestmark"
    summary = "benchmark test modules must carry pytestmark = pytest.mark.bench"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.path_class.benchmarks_test:
            return
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "pytestmark"
                for target in node.targets
            ):
                if any(
                    isinstance(item, ast.Attribute) and item.attr == "bench"
                    for item in ast.walk(node.value)
                ):
                    return
                yield self.finding(
                    module,
                    node,
                    "pytestmark assignment does not include pytest.mark.bench; "
                    "benchmark modules must opt out of the fast dev loop "
                    "(pytest -m 'not bench')",
                )
                return
        yield self.finding(
            module,
            module.tree,
            "benchmark test module has no module-level pytestmark = "
            "pytest.mark.bench; the conftest auto-marker is a fallback, not "
            "the contract",
        )


# ------------------------------------------------------------------- RPA008 --
class StoreBackendKindRule(Rule):
    """RPA008: store backends pin their kind as a non-empty string literal.

    The results-plane contract (``STORE_BACKENDS``) hangs everything on the
    ``kind`` string: format sniffing maps bytes on disk to a kind, ``--resume``
    mismatch errors name it, and ``results convert`` takes it as ``--to``.  A
    subclass of ``StoreBackend`` (recognised by a base name ending in
    ``StoreBackend``) must therefore declare ``kind`` as a non-empty string
    literal, and when the module registers the class, the registered kind must
    be the same literal — a drifting pair would sniff as one format and error
    as another.
    """

    code = "RPA008"
    name = "store-backend-kind"
    summary = "StoreBackend subclasses must declare a non-empty literal kind"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        declared: Dict[str, Optional[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._is_store_backend(node):
                declared[node.name] = yield from self._check_class(module, node)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_registration(module, node, declared)

    @staticmethod
    def _is_store_backend(node: ast.ClassDef) -> bool:
        for base in node.bases:
            parts = _dotted_name(base)
            if parts is not None and parts[-1].endswith("StoreBackend"):
                return True
        return False

    def _check_class(
        self, module: SourceModule, node: ast.ClassDef
    ) -> Generator[Finding, None, Optional[str]]:
        kind = self._kind_assignment(node)
        if kind is None:
            yield self.finding(
                module,
                node,
                f"store backend {node.name!r} does not declare a class-level "
                f"kind; the STORE_BACKENDS contract (sniffing, --store-format "
                f"mismatch errors, results convert) keys on it",
            )
            return None
        value = kind.value
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            yield self.finding(
                module,
                kind,
                f"store backend {node.name!r} computes its kind dynamically; "
                f"declare it as a string literal so spec files, --store-format "
                f"and results convert can reference it",
            )
            return None
        if not value.value:
            yield self.finding(
                module,
                kind,
                f"store backend {node.name!r} declares an empty kind; an empty "
                f"kind is unreachable from --store-format and sniffing",
            )
            return None
        return value.value

    @staticmethod
    def _kind_assignment(node: ast.ClassDef) -> Optional[ast.AST]:
        """The class-body statement assigning ``kind``, or None."""
        for item in node.body:
            if isinstance(item, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "kind"
                for target in item.targets
            ):
                return item
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id == "kind"
                and item.value is not None
            ):
                return item
        return None

    def _check_registration(
        self, module: SourceModule, call: ast.Call, declared: Dict[str, Optional[str]]
    ) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "register"):
            return
        receiver = _dotted_name(func.value)
        if receiver is None or receiver[-1] != "STORE_BACKENDS":
            return
        if len(call.args) < 2 or not isinstance(call.args[1], ast.Name):
            return
        backend = call.args[1].id
        if backend not in declared or declared[backend] is None:
            return  # not a local backend class, or already flagged above
        kind = call.args[0]
        if (
            isinstance(kind, ast.Constant)
            and isinstance(kind.value, str)
            and kind.value != declared[backend]
        ):
            yield self.finding(
                module,
                kind,
                f"STORE_BACKENDS.register({kind.value!r}, {backend}) disagrees "
                f"with {backend}.kind = {declared[backend]!r}; the registered "
                f"kind and the class attribute must be the same literal",
            )


# ------------------------------------------------------------------- RPA009 --
_LOOP_NODES = (ast.While, ast.For, ast.AsyncFor)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _shallow_body(loop: ast.AST) -> Iterator[ast.AST]:
    """The loop's own statements: stops at nested loops and new scopes."""
    stack: List[ast.AST] = list(getattr(loop, "body", [])) + list(
        getattr(loop, "orelse", [])
    )
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _LOOP_NODES + _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _handler_resumes(handler: ast.ExceptHandler) -> bool:
    """True when the except body lets the loop take another iteration."""
    last = handler.body[-1]
    return not isinstance(last, (ast.Raise, ast.Break, ast.Return))


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``ALL_CAPS = <int literal>`` bindings — literal by convention."""
    constants: Dict[str, int] = {}
    for node in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not (
            isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                constants[target.id] = value.value
    return constants


class BoundedRetryRule(Rule):
    """RPA009: retry loops in deterministic paths are literally bounded, sleep-free.

    The recovery layer retries by scheduling backed-off retransmissions in
    *sim time*, so a run with a persistent fault still terminates at the same
    step count on every host.  A retry loop that spins ``while True`` until an
    exception stops happening has no such guarantee — under an injected
    persistent fault it livelocks — and one that sleeps on the wall clock
    between attempts couples the schedule to host load.  Two shapes are
    flagged: an except-and-retry loop whose bound is not a literal (an int
    literal in ``range()``, or a module-level ALL_CAPS int constant, which is
    the repo's named-literal idiom), and ``time.sleep`` anywhere inside a loop.
    ``while`` loops with a dynamic exit condition (``while not done``) are a
    protocol's own progress argument, not a retry bound, and stay out of
    scope.
    """

    code = "RPA009"
    name = "unbounded-retry"
    summary = (
        "retry loops in deterministic paths need a literal bound and no time.sleep"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.path_class.deterministic:
            return
        imports = _import_map(module.tree)
        constants = _module_int_constants(module.tree)
        yield from self._visit(module, module.tree, imports, constants, in_loop=False)

    def _visit(
        self, module, node, imports, constants, in_loop
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _LOOP_NODES):
                yield from self._check_loop(module, child, constants)
            if in_loop and isinstance(child, ast.Call):
                if _resolve_call_origin(child.func, imports) == "time.sleep":
                    yield self.finding(
                        module,
                        child,
                        "time.sleep() inside a loop blocks on the wall clock "
                        "between attempts; model backoff in sim time "
                        "(set_timer / scheduled retransmission) so the retry "
                        "schedule replays bit-identically",
                    )
            if isinstance(child, _SCOPE_NODES):
                yield from self._visit(module, child, imports, constants, False)
            else:
                yield from self._visit(
                    module,
                    child,
                    imports,
                    constants,
                    in_loop or isinstance(child, _LOOP_NODES),
                )

    def _check_loop(self, module, loop, constants) -> Iterator[Finding]:
        if not any(
            _handler_resumes(handler)
            for node in _shallow_body(loop)
            if isinstance(node, ast.Try)
            for handler in node.handlers
        ):
            return
        if isinstance(loop, ast.While):
            test = loop.test
            if isinstance(test, ast.Constant) and test.value:
                yield self.finding(
                    module,
                    loop,
                    "unbounded retry loop: `while True` with an except handler "
                    "that retries never terminates under a persistent fault; "
                    "bound the attempts with a literal "
                    "(for attempt in range(N))",
                )
            return
        stop = self._range_stop(loop.iter)
        if stop is None:
            return  # not a counted retry loop (iterating real items is fine)
        if isinstance(stop, ast.Constant):
            if isinstance(stop.value, int) and not isinstance(stop.value, bool):
                return
        elif isinstance(stop, ast.Name) and stop.id in constants:
            return
        yield self.finding(
            module,
            loop,
            "retry loop bound is not a literal; use an int literal or a "
            "module-level ALL_CAPS int constant in range() so the worst-case "
            "attempt count is auditable from the source",
        )

    @staticmethod
    def _range_stop(iterable: ast.AST) -> Optional[ast.AST]:
        """The stop expression of a ``range(...)`` call, else None."""
        if not (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
            and 1 <= len(iterable.args) <= 3
            and not iterable.keywords
        ):
            return None
        return iterable.args[0] if len(iterable.args) == 1 else iterable.args[1]


# ------------------------------------------------------------------ registry --
#: Rule factories by stable code — registered exactly like mechanism kinds, so
#: ``RULES.create(ComponentSpec("RPA001"), path)`` builds a rule instance and
#: ``RULES.available()`` is the authoritative code list for ``--select``.
RULES = Registry("lint rule")
RULES.register("RPA001", DeterminismTaintRule)
RULES.register("RPA002", UnorderedIterationRule)
RULES.register("RPA003", PoolSafeExceptionRule)
RULES.register("RPA004", PicklableSubmissionRule)
RULES.register("RPA005", FrozenSpecRule)
RULES.register("RPA006", RegistryLiteralKindRule)
RULES.register("RPA007", BenchPytestmarkRule)
RULES.register("RPA008", StoreBackendKindRule)
RULES.register("RPA009", BoundedRetryRule)


def all_rule_codes() -> Tuple[str, ...]:
    return tuple(RULES.available())
