"""Taint-path policy: which rules apply to which files.

The determinism rules (RPA001/RPA002) only make sense on the *deterministic
paths* — the packages whose outputs the repo pins bit-identical across
engines, schedulers, executors and ``PYTHONHASHSEED`` values.  Classification
is purely structural (path segments under the ``repro`` package), so it works
identically for real files, test fixtures with virtual paths, and files named
on the CLI with absolute paths.

The policy table (see DESIGN.md, "Static analysis: the determinism linter"):

========================  =========================================
path                      classification
========================  =========================================
``repro/auctions/``       deterministic
``repro/net/``            deterministic
``repro/consensus/``      deterministic
``repro/gametheory/``     deterministic
``repro/obs/``            deterministic (sim-time-only tracing/metrics)
``repro/scenarios/``      deterministic, except ``dispatch.py``
``repro/bench/``          allowlisted (wall-clock measurement is its job)
``benchmarks/``           bench-suite (RPA007 pytestmark contract)
everything else           contract rules only (RPA003–RPA006, RPA008)
========================  =========================================

``scenarios/dispatch.py`` is exempt because worker resolution *must* inspect
the real machine (``available_cpus``) and warn on real stderr — it is the one
scenarios module whose job is talking to the actual host, not the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Tuple, Union

__all__ = [
    "ALLOWLISTED_PACKAGES",
    "DETERMINISTIC_EXEMPT_FILES",
    "DETERMINISTIC_PACKAGES",
    "PathClass",
    "classify_path",
]

#: Sub-packages of ``repro`` whose behaviour is pinned bit-identical.
DETERMINISTIC_PACKAGES = frozenset(
    {"auctions", "net", "consensus", "gametheory", "obs", "scenarios"}
)

#: Files inside deterministic packages that are exempt by design.
DETERMINISTIC_EXEMPT_FILES = frozenset({("scenarios", "dispatch.py")})

#: Sub-packages of ``repro`` where wall-clock and host entropy are the point.
ALLOWLISTED_PACKAGES = frozenset({"bench"})


@dataclass(frozen=True)
class PathClass:
    """The lint-relevant classification of one source file."""

    display_path: str
    repro_parts: Tuple[str, ...]
    deterministic: bool
    allowlisted: bool
    benchmarks_test: bool


def _normalize(path: Union[str, "PurePosixPath"]) -> Tuple[str, ...]:
    return tuple(part for part in PurePosixPath(str(path).replace("\\", "/")).parts)


def classify_path(path: Union[str, PurePosixPath]) -> PathClass:
    """Classify ``path`` by its segments; accepts absolute or repo-relative paths."""
    parts = _normalize(path)
    display = "/".join(parts)

    repro_parts: Tuple[str, ...] = ()
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        repro_parts = parts[anchor + 1 :]

    deterministic = False
    allowlisted = False
    if repro_parts:
        package = repro_parts[0]
        allowlisted = package in ALLOWLISTED_PACKAGES
        if package in DETERMINISTIC_PACKAGES and not allowlisted:
            exempt = any(
                repro_parts[0] == head and repro_parts[-1] == tail
                for head, tail in DETERMINISTIC_EXEMPT_FILES
            )
            deterministic = not exempt

    benchmarks_test = (
        "benchmarks" in parts
        and parts[-1].startswith("test_")
        and parts[-1].endswith(".py")
    )

    return PathClass(
        display_path=display,
        repro_parts=repro_parts,
        deterministic=deterministic,
        allowlisted=allowlisted,
        benchmarks_test=benchmarks_test,
    )
