"""Findings and suppressions: the data the linter emits and the comments that mute it.

A :class:`Finding` is one rule violation at one source location.  Findings are
frozen, ordered (path, line, col, code) and JSON-round-trippable, so reports
are byte-stable across runs — the same property every other artifact in this
repo guarantees (RunRecord, ResilienceRecord), and the reason a CI lint job
can diff two reports meaningfully.

Suppression is per-line, explicit and *code-scoped*::

    now = time.perf_counter()  # repro: noqa[RPA001] wall-clock timing field

Only the named codes on that exact line are muted; a bare ``# repro: noqa``
(no code list) is deliberately NOT honoured — a suppression that does not say
*what* it suppresses rots silently when the line later grows a second hazard.
Everything after the closing bracket is the human justification; the linter
does not parse it but the review convention (DESIGN.md) requires it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Tuple

__all__ = ["Finding", "scan_suppressions", "is_suppressed", "sort_findings"]

#: ``# repro: noqa[RPA001]`` or ``# repro: noqa[RPA001, RPA004] justification``.
_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: a stable code at a precise ``path:line:col``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def scan_suppressions(source: str) -> Mapping[int, FrozenSet[str]]:
    """Map 1-based line numbers to the RPA codes suppressed on that line."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip().upper() for code in match.group(1).split(",") if code.strip()
        )
        if codes:
            suppressions[lineno] = codes
    return suppressions


def is_suppressed(finding: Finding, suppressions: Mapping[int, FrozenSet[str]]) -> bool:
    return finding.code in suppressions.get(finding.line, frozenset())


def sort_findings(findings) -> Tuple[Finding, ...]:
    """Deterministic report order: (path, line, col, code)."""
    return tuple(sorted(findings))
