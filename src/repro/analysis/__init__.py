"""Static analysis: the determinism & contract linter (``repro-auction lint``).

The repo's headline guarantee — bit-identical results across engines,
schedulers, sequential/parallel executors and ``PYTHONHASHSEED`` values — is
enforced dynamically by the differential suites; this package enforces it
*statically*, catching the bug classes that escape runtime tests before they
run (an unpicklable exception reaches a process pool only on the error path;
set-iteration order only diverges under another hash seed).

Layout: :mod:`~repro.analysis.rules` holds the RPA rule set and the
``RULES`` registry (same extension contract as ``MECHANISMS``);
:mod:`~repro.analysis.paths` the taint-path policy;
:mod:`~repro.analysis.engine` discovery/dispatch/suppression;
:mod:`~repro.analysis.reporting` the text/JSON rendering;
:mod:`~repro.analysis.findings` the finding and ``# repro: noqa[RPAxxx]``
primitives.  See DESIGN.md, "Static analysis: the determinism linter", for
the rule contract and how to add a rule.
"""

from repro.analysis.engine import (
    LintError,
    LintReport,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.analysis.findings import Finding, scan_suppressions
from repro.analysis.paths import classify_path
from repro.analysis.reporting import (
    REPORT_VERSION,
    render_json,
    render_text,
    report_to_dict,
)
from repro.analysis.rules import RULES, Rule, SourceModule, all_rule_codes

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "REPORT_VERSION",
    "RULES",
    "Rule",
    "SourceModule",
    "all_rule_codes",
    "classify_path",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "report_to_dict",
    "scan_suppressions",
    "select_rules",
]
